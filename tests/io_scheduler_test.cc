#include "storage/io_scheduler.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <mutex>
#include <string>
#include <vector>

#include "common/rng.h"
#include "storage/fault_injector.h"

namespace ratel {
namespace {

std::string TempDir(const std::string& tag) {
  return ::testing::TempDir() + "/ratel_iosched_" + tag + "_" +
         std::to_string(::getpid());
}

TEST(IoSchedulerTest, WriteThenReadRoundTrip) {
  auto store = BlockStore::Open(TempDir("rt"), 2, 4096);
  ASSERT_TRUE(store.ok());
  IoScheduler sched(store->get(), 2);
  Rng rng(1);
  std::vector<uint8_t> data(5000);
  for (auto& b : data) b = static_cast<uint8_t>(rng.NextU64());
  const auto wt = sched.SubmitWrite("blob", data.data(), data.size(),
                                    IoScheduler::Priority::kBackground);
  ASSERT_TRUE(sched.Wait(wt).ok());
  std::vector<uint8_t> out;
  const auto rt = sched.SubmitRead(
      "blob", &out, data.size(), IoScheduler::Priority::kLatencyCritical);
  ASSERT_TRUE(sched.Wait(rt).ok());
  EXPECT_EQ(out, data);
}

TEST(IoSchedulerTest, DrainWaitsForEverything) {
  auto store = BlockStore::Open(TempDir("drain"), 2, 4096);
  ASSERT_TRUE(store.ok());
  IoScheduler sched(store->get(), 3);
  std::vector<uint8_t> data(256, 0xAB);
  for (int i = 0; i < 40; ++i) {
    sched.SubmitWrite("k" + std::to_string(i), data.data(), data.size(),
                      i % 2 ? IoScheduler::Priority::kBackground
                            : IoScheduler::Priority::kLatencyCritical);
  }
  ASSERT_TRUE(sched.Drain().ok());
  EXPECT_EQ(sched.completed_latency_critical() +
                sched.completed_background(),
            40);
  EXPECT_EQ((*store)->num_blobs(), 40);
}

// Harness for service-order tests, built on the fault seam's injected
// stall hook: the worker is deterministically parked *inside* the store
// operation of a "gate" request (FaultInjector::StallOpsOn), so every
// later submission is queued while the worker is provably busy; the
// recorded completion order is then the exact (deterministic) service
// order. No wall-clock sleeps, no completion-callback gating.
class StarvationHarness {
 public:
  explicit StarvationHarness(const std::string& tag, int workers = 1,
                             IoScheduler::Tuning tuning = {}) {
    auto store_or = BlockStore::Open(TempDir(tag), 2, 4096,
                                     BlockStore::Tuning{&injector_, 3});
    EXPECT_TRUE(store_or.ok());
    store_ = std::move(store_or).value();
    sched_ = std::make_unique<IoScheduler>(store_.get(), workers, tuning);
    injector_.StallOpsOn("gate");
    sched_->SubmitWrite("gate", byte_.data(), 1,
                        IoScheduler::Priority::kLatencyCritical);
    injector_.WaitForStalled(1);  // the worker is now held busy
  }

  void SubmitTagged(const std::string& key, IoScheduler::Priority priority) {
    sched_->SubmitWrite(key, byte_.data(), 1, priority,
                        [this, key](const IoResult&) {
                          std::lock_guard<std::mutex> lock(mu_);
                          order_.push_back(key);
                        });
  }

  void ReleaseGate() { injector_.ReleaseStalled(); }

  std::vector<std::string> order() {
    std::lock_guard<std::mutex> lock(mu_);
    return order_;
  }

  IoScheduler& sched() { return *sched_; }

 private:
  FaultInjector injector_{FaultConfig{}};
  std::unique_ptr<BlockStore> store_;
  std::unique_ptr<IoScheduler> sched_;
  std::vector<uint8_t> byte_ = {0x01};
  std::mutex mu_;
  std::vector<std::string> order_;
};

TEST(IoSchedulerTest, CriticalClassServedFirst) {
  // Single worker, parked while we fill the queues: the critical
  // request must overtake the whole queued background tail.
  StarvationHarness harness("prio");
  for (int i = 0; i < 30; ++i) {
    harness.SubmitTagged("bg" + std::to_string(i),
                         IoScheduler::Priority::kBackground);
  }
  harness.SubmitTagged("hot", IoScheduler::Priority::kLatencyCritical);
  harness.ReleaseGate();
  ASSERT_TRUE(harness.sched().Drain().ok());
  const std::vector<std::string> order = harness.order();
  ASSERT_EQ(order.size(), 31u);
  EXPECT_EQ(order.front(), "hot");
  // Background requests keep FIFO order among themselves.
  EXPECT_EQ(order[1], "bg0");
  EXPECT_EQ(order.back(), "bg29");
  EXPECT_EQ(harness.sched().completed_background(), 30);
}

TEST(IoSchedulerTest, NormalClassOvertakesTheBackgroundBacklog) {
  // The stall the deferred-update pipeline must not re-introduce: a
  // foreground-waited (normal) state request queued behind a large
  // accumulated backlog of deferred background writes. The normal
  // request must be served before the entire backlog, yet after any
  // latency-critical request.
  StarvationHarness harness("normal");
  for (int i = 0; i < 20; ++i) {
    harness.SubmitTagged("deferred" + std::to_string(i),
                         IoScheduler::Priority::kBackground);
  }
  harness.SubmitTagged("state", IoScheduler::Priority::kNormal);
  harness.SubmitTagged("hot", IoScheduler::Priority::kLatencyCritical);
  harness.ReleaseGate();
  ASSERT_TRUE(harness.sched().Drain().ok());
  const std::vector<std::string> order = harness.order();
  ASSERT_EQ(order.size(), 22u);
  EXPECT_EQ(order[0], "hot");
  EXPECT_EQ(order[1], "state");
  EXPECT_EQ(order[2], "deferred0");
  EXPECT_EQ(order.back(), "deferred19");
  EXPECT_EQ(harness.sched().completed_normal(), 1);
  EXPECT_EQ(harness.sched().completed_background(), 20);
}

TEST(IoSchedulerTest, ErrorsSurfaceThroughWaitAndDrain) {
  auto store = BlockStore::Open(TempDir("err"), 2, 4096);
  ASSERT_TRUE(store.ok());
  IoScheduler sched(store->get(), 2);
  std::vector<uint8_t> out;
  const auto bad = sched.SubmitRead(
      "missing", &out, 64, IoScheduler::Priority::kLatencyCritical);
  EXPECT_EQ(sched.Wait(bad).code(), StatusCode::kNotFound);
  EXPECT_EQ(sched.Drain().code(), StatusCode::kNotFound);  // first error
}

TEST(IoSchedulerTest, CompletionCallbackRunsBeforeTicketResolves) {
  auto store = BlockStore::Open(TempDir("cb"), 2, 4096);
  ASSERT_TRUE(store.ok());
  IoScheduler sched(store->get(), 2);
  std::vector<uint8_t> data(128, 0x5A);
  std::atomic<bool> write_cb{false};
  const auto wt = sched.SubmitWrite(
      "k", data.data(), data.size(), IoScheduler::Priority::kBackground,
      [&](const IoResult& r) {
        EXPECT_TRUE(r.status.ok());
        EXPECT_EQ(r.attempts, 1);
        EXPECT_FALSE(r.gave_up);
        write_cb.store(true);
      });
  ASSERT_TRUE(sched.Wait(wt).ok());
  EXPECT_TRUE(write_cb.load());  // callback effects visible by Wait-return
  // Errors reach the callback too. kNotFound is not transient, so no
  // retries are burned on it.
  std::vector<uint8_t> out;
  std::atomic<bool> saw_not_found{false};
  const auto bad = sched.SubmitRead(
      "missing", &out, 64, IoScheduler::Priority::kLatencyCritical,
      [&](const IoResult& r) {
        saw_not_found.store(r.status.code() == StatusCode::kNotFound &&
                            r.attempts == 1 && !r.gave_up);
      });
  EXPECT_EQ(sched.Wait(bad).code(), StatusCode::kNotFound);
  EXPECT_TRUE(saw_not_found.load());
}

TEST(IoSchedulerTest, AgingPromotesStarvedBackgroundRequest) {
  IoScheduler::Tuning tuning;
  tuning.background_aging_limit = 8;
  StarvationHarness harness("aging", 1, tuning);
  // One background request, then a long run of latency-critical work —
  // the sustained-fetch pattern that starves writebacks under strict
  // priority.
  harness.SubmitTagged("bg", IoScheduler::Priority::kBackground);
  for (int i = 0; i < 32; ++i) {
    harness.SubmitTagged("c" + std::to_string(i),
                         IoScheduler::Priority::kLatencyCritical);
  }
  harness.ReleaseGate();
  ASSERT_TRUE(harness.sched().Drain().ok());
  const std::vector<std::string> order = harness.order();
  ASSERT_EQ(order.size(), 33u);
  // The gate completion counts as 1 critical; once 8 critical requests
  // completed while "bg" waited, it is served next — position 7 of the
  // post-gate order, far ahead of the 32nd critical.
  EXPECT_EQ(order[7], "bg") << "bg served at position "
                            << (std::find(order.begin(), order.end(), "bg") -
                                order.begin());
  EXPECT_EQ(harness.sched().promoted_background(), 1);
}

TEST(IoSchedulerTest, AgingPromotesStarvedNormalRequest) {
  IoScheduler::Tuning tuning;
  tuning.background_aging_limit = 8;
  StarvationHarness harness("aging_nrm", 1, tuning);
  // The middle class must not starve under sustained fetch load either.
  harness.SubmitTagged("state", IoScheduler::Priority::kNormal);
  for (int i = 0; i < 32; ++i) {
    harness.SubmitTagged("c" + std::to_string(i),
                         IoScheduler::Priority::kLatencyCritical);
  }
  harness.ReleaseGate();
  ASSERT_TRUE(harness.sched().Drain().ok());
  const std::vector<std::string> order = harness.order();
  ASSERT_EQ(order.size(), 33u);
  // Same arithmetic as the background case: after 8 critical
  // completions (gate included) "state" is served next.
  EXPECT_EQ(order[7], "state");
  EXPECT_EQ(harness.sched().promoted_normal(), 1);
  EXPECT_EQ(harness.sched().completed_normal(), 1);
}

TEST(IoSchedulerTest, StrictPriorityStarvesBackgroundRegression) {
  IoScheduler::Tuning tuning;
  tuning.background_aging_limit = 0;  // strict priority, no aging
  StarvationHarness harness("strict", 1, tuning);
  harness.SubmitTagged("bg", IoScheduler::Priority::kBackground);
  for (int i = 0; i < 32; ++i) {
    harness.SubmitTagged("c" + std::to_string(i),
                         IoScheduler::Priority::kLatencyCritical);
  }
  harness.ReleaseGate();
  ASSERT_TRUE(harness.sched().Drain().ok());
  const std::vector<std::string> order = harness.order();
  ASSERT_EQ(order.size(), 33u);
  // Without aging the background request is served dead last.
  EXPECT_EQ(order.back(), "bg");
  EXPECT_EQ(harness.sched().promoted_background(), 0);
}

TEST(IoSchedulerTest, ConcurrentMixedLoad) {
  auto store = BlockStore::Open(TempDir("mixed"), 4, 4096);
  ASSERT_TRUE(store.ok());
  IoScheduler sched(store->get(), 4);
  Rng rng(7);
  std::vector<std::vector<uint8_t>> blobs(32);
  std::vector<IoScheduler::Ticket> writes;
  for (int i = 0; i < 32; ++i) {
    blobs[i].resize(200 + rng.NextBelow(800));
    for (auto& b : blobs[i]) b = static_cast<uint8_t>(rng.NextU64());
    writes.push_back(sched.SubmitWrite(
        "m" + std::to_string(i), blobs[i].data(),
        static_cast<int64_t>(blobs[i].size()),
        i % 3 ? IoScheduler::Priority::kBackground
              : IoScheduler::Priority::kLatencyCritical));
  }
  for (auto t : writes) ASSERT_TRUE(sched.Wait(t).ok());
  std::vector<std::vector<uint8_t>> outs(32);
  std::vector<IoScheduler::Ticket> reads;
  for (int i = 0; i < 32; ++i) {
    reads.push_back(sched.SubmitRead(
        "m" + std::to_string(i), &outs[i],
        static_cast<int64_t>(blobs[i].size()),
        IoScheduler::Priority::kLatencyCritical));
  }
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(sched.Wait(reads[i]).ok());
    EXPECT_EQ(outs[i], blobs[i]) << i;
  }
}

TEST(IoSchedulerTest, TransientReadErrorsRetriedToSuccess) {
  FaultConfig fault;
  fault.seed = 11;
  fault.read_error_every = 2;  // every 2nd read attempt of a key fails
  FaultInjector injector(fault);
  auto store = BlockStore::Open(TempDir("retry"), 2, 4096,
                                BlockStore::Tuning{&injector, 3});
  ASSERT_TRUE(store.ok());
  IoScheduler::Tuning tuning;
  tuning.backoff_sleep_fn = [](double) {};  // virtual clock: no waiting
  IoScheduler sched(store->get(), 2, tuning);
  std::vector<uint8_t> data(512, 0x3C);
  for (int i = 0; i < 8; ++i) {
    sched.SubmitWrite("r" + std::to_string(i), data.data(), data.size(),
                      IoScheduler::Priority::kBackground);
  }
  ASSERT_TRUE(sched.Drain().ok());
  std::vector<std::vector<uint8_t>> outs(8);
  for (int i = 0; i < 8; ++i) {
    const auto t = sched.SubmitRead("r" + std::to_string(i), &outs[i], 512,
                                    IoScheduler::Priority::kLatencyCritical);
    ASSERT_TRUE(sched.Wait(t).ok()) << i;
    EXPECT_EQ(outs[i], data) << i;
  }
  // With period 2, each key loses exactly one of its first two attempts.
  EXPECT_GT(sched.total_retries(), 0);
  EXPECT_EQ(sched.total_giveups(), 0);
  EXPECT_GT(injector.counts().read_errors, 0);
}

TEST(IoSchedulerTest, PermanentFailureGivesUpAfterMaxAttempts) {
  FaultConfig fault;
  fault.seed = 5;
  fault.write_error_every = 1;  // every write attempt fails
  FaultInjector injector(fault);
  auto store = BlockStore::Open(TempDir("giveup"), 2, 4096,
                                BlockStore::Tuning{&injector, 1 << 20});
  ASSERT_TRUE(store.ok());
  IoScheduler::Tuning tuning;
  tuning.retry.max_attempts = 3;
  tuning.backoff_sleep_fn = [](double) {};
  IoScheduler sched(store->get(), 1, tuning);
  std::vector<uint8_t> data(64, 0x77);
  std::atomic<int> attempts{0};
  std::atomic<bool> gave_up{false};
  const auto t = sched.SubmitWrite(
      "doomed", data.data(), data.size(), IoScheduler::Priority::kBackground,
      [&](const IoResult& r) {
        attempts.store(r.attempts);
        gave_up.store(r.gave_up);
      });
  EXPECT_EQ(sched.Wait(t).code(), StatusCode::kUnavailable);
  EXPECT_EQ(attempts.load(), 3);
  EXPECT_TRUE(gave_up.load());
  EXPECT_EQ(sched.total_retries(), 2);
  EXPECT_EQ(sched.total_giveups(), 1);
}

TEST(IoSchedulerTest, BackoffDeadlineCapsRetrySleep) {
  FaultConfig fault;
  fault.seed = 5;
  fault.write_error_every = 1;
  FaultInjector injector(fault);
  auto store = BlockStore::Open(TempDir("deadline"), 2, 4096,
                                BlockStore::Tuning{&injector, 1 << 20});
  ASSERT_TRUE(store.ok());
  IoScheduler::Tuning tuning;
  tuning.retry.max_attempts = 10;
  tuning.retry.base_backoff_s = 1.0;        // any sleep would be huge...
  tuning.retry.max_backoff_s = 1.0;
  tuning.retry.backoff_deadline_s = 0.5;    // ...but the deadline forbids it
  std::vector<double> slept;
  std::mutex slept_mu;
  tuning.backoff_sleep_fn = [&](double s) {
    std::lock_guard<std::mutex> lock(slept_mu);
    slept.push_back(s);
  };
  IoScheduler sched(store->get(), 1, tuning);
  std::vector<uint8_t> data(64, 0x11);
  std::atomic<bool> gave_up{false};
  const auto t = sched.SubmitWrite(
      "doomed", data.data(), data.size(), IoScheduler::Priority::kBackground,
      [&](const IoResult& r) { gave_up.store(r.gave_up); });
  EXPECT_EQ(sched.Wait(t).code(), StatusCode::kUnavailable);
  EXPECT_TRUE(gave_up.load());
  // The first backoff (>= 0.75 s after jitter) already busts the 0.5 s
  // deadline, so the request gives up without sleeping at all.
  EXPECT_TRUE(slept.empty());
  EXPECT_EQ(sched.total_giveups(), 1);
}

TEST(IoSchedulerTest, WaitOnUnknownOrConsumedTicketIsChecked) {
  auto store = BlockStore::Open(TempDir("ticket"), 2, 4096);
  ASSERT_TRUE(store.ok());
  IoScheduler sched(store->get(), 2);
  EXPECT_EQ(sched.Wait(987654).code(), StatusCode::kInvalidArgument);
  std::vector<uint8_t> data(64, 0x42);
  const auto t = sched.SubmitWrite("k", data.data(), data.size(),
                                   IoScheduler::Priority::kBackground);
  ASSERT_TRUE(sched.Wait(t).ok());
  // A ticket is single-use: the second Wait is a caller bug, reported
  // as kInvalidArgument instead of blocking forever.
  EXPECT_EQ(sched.Wait(t).code(), StatusCode::kInvalidArgument);
}

TEST(IoSchedulerTest, BufferPayloadRoundTrip) {
  auto store = BlockStore::Open(TempDir("bufrt"), 2, 4096);
  ASSERT_TRUE(store.ok());
  IoScheduler sched(store->get(), 2);
  Buffer payload = Buffer::Allocate(5000);
  for (int64_t i = 0; i < 5000; ++i) {
    payload.mutable_data()[i] = static_cast<uint8_t>(i * 7);
  }
  const uint8_t* published = payload.data();
  const auto wt = sched.SubmitWrite("blob", payload,
                                    IoScheduler::Priority::kBackground);
  ASSERT_TRUE(sched.Wait(wt).ok());
  // The scheduler held a reference, not a copy, while the write was in
  // flight; our handle still points at the same block.
  EXPECT_EQ(payload.data(), published);
  Buffer dst = Buffer::Allocate(5000);
  const auto rt =
      sched.SubmitRead("blob", dst, IoScheduler::Priority::kLatencyCritical);
  ASSERT_TRUE(sched.Wait(rt).ok());
  EXPECT_EQ(std::memcmp(dst.data(), payload.data(), 5000), 0);
}

}  // namespace
}  // namespace ratel
