// Bitwise-determinism suite (ctest label: determinism).
//
// The parallel compute layer promises more than "close": because every
// kernel partitions work into chunks whose boundaries depend only on the
// problem shape, and keeps a fixed accumulation order inside each chunk,
// results must be *bitwise identical* for every RATEL_THREADS value.
// These tests pin that contract end to end — single ops, the CPU Adam
// chunk grid, and whole TinyGpt training steps.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <vector>

#include "autograd/ops.h"
#include "autograd/transformer.h"
#include "common/rng.h"
#include "optim/cpu_adam.h"
#include "runtime/compute_pool.h"
#include "runtime/dataset.h"
#include "runtime/ratel_trainer.h"

namespace ratel {
namespace {

std::vector<float> RandomVec(int64_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (int64_t i = 0; i < n; ++i) {
    v[i] = static_cast<float>(rng.NextGaussian()) * 0.5f;
  }
  return v;
}

bool BitwiseEqual(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

// Runs `steps` real TinyGpt train steps (forward, backward, in-memory
// Adam on every parameter) at the given compute thread count and
// returns the per-step loss bits plus the final parameter bytes.
struct TrainRun {
  std::vector<float> losses;
  std::vector<std::vector<float>> params;
};

TrainRun TrainTinyGpt(int threads, int steps) {
  SetComputeThreads(threads);
  ag::TinyGptConfig cfg;
  cfg.vocab_size = 48;
  cfg.seq_len = 12;
  cfg.hidden_dim = 32;
  cfg.num_heads = 4;
  cfg.num_layers = 2;
  ag::TinyGpt model(cfg, /*seed=*/77);

  AdamConfig acfg;
  acfg.lr = 1e-3;
  acfg.weight_decay = 0.01;
  CpuAdamKernel kernel(acfg);
  std::vector<std::vector<float>> exp_avg, exp_avg_sq;
  for (auto& [name, var] : model.parameters()) {
    exp_avg.emplace_back(var.value().size(), 0.0f);
    exp_avg_sq.emplace_back(var.value().size(), 0.0f);
  }

  SyntheticDataset dataset(SyntheticTask::kAffineMap, cfg.vocab_size,
                           cfg.seq_len, /*seed=*/7);
  const int64_t batch = 2;
  TrainRun run;
  for (int step = 1; step <= steps; ++step) {
    const TokenBatch b = dataset.NextBatch(batch);
    model.ZeroGrads();
    ag::Variable loss = model.Loss(b.ids, b.targets, batch);
    loss.Backward();
    run.losses.push_back(loss.value()[0]);
    size_t p = 0;
    for (auto& [name, var] : model.parameters()) {
      const std::vector<float>& grad = var.grad();
      kernel.Step(step, static_cast<int64_t>(grad.size()), grad.data(),
                  var.mutable_value().data(), exp_avg[p].data(),
                  exp_avg_sq[p].data(), /*params16_out=*/nullptr);
      ++p;
    }
  }
  for (auto& [name, var] : model.parameters()) run.params.push_back(var.value());
  SetComputeThreads(1);
  return run;
}

TEST(DeterminismTest, TinyGptTrainingIsBitwiseIdenticalAcrossThreadCounts) {
  const TrainRun serial = TrainTinyGpt(/*threads=*/1, /*steps=*/3);
  const TrainRun parallel = TrainTinyGpt(/*threads=*/4, /*steps=*/3);
  ASSERT_EQ(serial.losses.size(), parallel.losses.size());
  for (size_t i = 0; i < serial.losses.size(); ++i) {
    // EXPECT_EQ on float is exact equality — bitwise for non-NaN values.
    EXPECT_EQ(serial.losses[i], parallel.losses[i]) << "step " << i + 1;
  }
  ASSERT_EQ(serial.params.size(), parallel.params.size());
  for (size_t p = 0; p < serial.params.size(); ++p) {
    EXPECT_TRUE(BitwiseEqual(serial.params[p], parallel.params[p]))
        << "parameter tensor " << p << " diverged";
  }
}

TEST(DeterminismTest, ForwardLogitsAreBitwiseIdenticalAcrossThreadCounts) {
  ag::TinyGptConfig cfg;
  cfg.vocab_size = 40;
  cfg.seq_len = 16;
  cfg.hidden_dim = 32;
  cfg.num_heads = 4;
  cfg.num_layers = 2;
  SyntheticDataset dataset(SyntheticTask::kAffineMap, cfg.vocab_size,
                           cfg.seq_len, /*seed=*/11);
  const TokenBatch b = dataset.NextBatch(2);

  SetComputeThreads(1);
  ag::TinyGpt model1(cfg, /*seed=*/5);
  const std::vector<float> logits1 = model1.Logits(b.ids, 2).value();
  SetComputeThreads(4);
  ag::TinyGpt model4(cfg, /*seed=*/5);
  const std::vector<float> logits4 = model4.Logits(b.ids, 2).value();
  SetComputeThreads(1);
  EXPECT_TRUE(BitwiseEqual(logits1, logits4));
}

TEST(DeterminismTest, ParallelAdamMatchesScalarReferenceBitwise) {
  // n spans multiple 4096-element chunks plus a ragged tail.
  const int64_t n = 3 * CpuAdamKernel::kChunk + 1234;
  AdamConfig cfg;
  cfg.lr = 2e-3;
  cfg.weight_decay = 0.05;
  CpuAdamKernel kernel(cfg);

  std::vector<float> p_ref = RandomVec(n, 1);
  std::vector<float> m_ref(n, 0.0f), v_ref(n, 0.0f);
  std::vector<float> p_par = p_ref, m_par = m_ref, v_par = v_ref;
  std::vector<Fp16> p16_ref(n), p16_par(n);

  SetComputeThreads(4);
  for (int step = 1; step <= 3; ++step) {
    const std::vector<float> g = RandomVec(n, 100 + step);
    kernel.StepSerial(step, n, g.data(), p_ref.data(), m_ref.data(),
                      v_ref.data(), p16_ref.data());
    kernel.Step(step, n, g.data(), p_par.data(), m_par.data(), v_par.data(),
                p16_par.data());
  }
  SetComputeThreads(1);
  EXPECT_TRUE(BitwiseEqual(p_ref, p_par));
  EXPECT_TRUE(BitwiseEqual(m_ref, m_par));
  EXPECT_TRUE(BitwiseEqual(v_ref, v_par));
  EXPECT_EQ(std::memcmp(p16_ref.data(), p16_par.data(), n * sizeof(Fp16)), 0);
}

TEST(DeterminismTest, Fp16GradAdamIsBitwiseIdenticalAcrossThreadCounts) {
  const int64_t n = 2 * CpuAdamKernel::kChunk + 77;
  AdamConfig cfg;
  cfg.lr = 1e-3;
  CpuAdamKernel kernel(cfg);

  const std::vector<float> g32 = RandomVec(n, 9);
  std::vector<Fp16> g16(n);
  for (int64_t i = 0; i < n; ++i) g16[i] = FloatToHalf(g32[i] * 1024.0f);

  auto run = [&](int threads) {
    SetComputeThreads(threads);
    std::vector<float> p = RandomVec(n, 2), m(n, 0.0f), v(n, 0.0f);
    std::vector<Fp16> p16(n);
    for (int step = 1; step <= 2; ++step) {
      kernel.StepFp16Grads(step, n, g16.data(), p.data(), m.data(), v.data(),
                           p16.data(), /*grad_unscale=*/1.0f / 1024.0f);
    }
    SetComputeThreads(1);
    return p;
  };
  EXPECT_TRUE(BitwiseEqual(run(1), run(4)));
}

TEST(DeterminismTest, GemmBackwardIsBitwiseIdenticalAcrossThreadCounts) {
  // Odd sizes exercise the ragged row/column tails of the tiled GEMMs.
  const int64_t m = 37, k = 53, n = 41;
  const std::vector<float> av = RandomVec(m * k, 3);
  const std::vector<float> bv = RandomVec(k * n, 4);

  auto run = [&](int threads) {
    SetComputeThreads(threads);
    ag::Variable a = ag::Variable::Parameter({m, k}, av, "a");
    ag::Variable b = ag::Variable::Parameter({k, n}, bv, "b");
    ag::Variable out = ag::MatMul(a, b);
    ag::Variable loss = ag::Mean(out);
    loss.Backward();
    std::vector<std::vector<float>> r = {out.value(), a.grad(), b.grad()};
    SetComputeThreads(1);
    return r;
  };
  const auto serial = run(1);
  const auto parallel = run(4);
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_TRUE(BitwiseEqual(serial[i], parallel[i])) << "tensor " << i;
  }
}

// ---------- Offload codecs vs bitwise determinism ----------

// Same TinyGpt workload, but through a full RatelTrainer whose
// activation spills take a real store round trip (host_cache_bytes is
// left 0, so every spilled tensor is encoded, persisted, fetched, and
// decoded — the codec is on the critical path, not shadowed by DRAM).

TrainRun TrainTrainerTinyGpt(int threads, int steps,
                             const std::string& activation_codec,
                             const std::string& tag) {
  SetComputeThreads(threads);
  ag::TinyGptConfig cfg;
  cfg.vocab_size = 48;
  cfg.seq_len = 12;
  cfg.hidden_dim = 32;
  cfg.num_heads = 4;
  cfg.num_layers = 2;
  ag::TinyGpt model(cfg, /*seed=*/77);

  TrainerOptions opts;
  opts.store_dir = ::testing::TempDir() + "/ratel_det_codec_" + tag + "_" +
                   std::to_string(threads) + "_" +
                   std::to_string(::getpid());
  opts.spill_activations = true;
  opts.codec.spec(FlowClass::kActivationSpill) = activation_codec;
  auto trainer = RatelTrainer::Create(&model, opts);
  EXPECT_TRUE(trainer.ok()) << trainer.status().message();

  SyntheticDataset dataset(SyntheticTask::kAffineMap, cfg.vocab_size,
                           cfg.seq_len, /*seed=*/7);
  const int64_t batch = 2;
  TrainRun run;
  for (int step = 1; step <= steps; ++step) {
    const TokenBatch b = dataset.NextBatch(batch);
    auto loss = (*trainer)->TrainStep(b.ids, b.targets, batch);
    EXPECT_TRUE(loss.ok());
    run.losses.push_back(loss.ok() ? *loss : 0.0f);
  }
  for (auto& [name, var] : model.parameters()) {
    std::vector<float> master;
    EXPECT_TRUE((*trainer)->optimizer().FetchMasterParams(name, &master).ok());
    run.params.push_back(std::move(master));
  }
  SetComputeThreads(1);
  return run;
}

void ExpectBitwiseIdenticalRuns(const TrainRun& a, const TrainRun& b) {
  ASSERT_EQ(a.losses.size(), b.losses.size());
  for (size_t i = 0; i < a.losses.size(); ++i) {
    EXPECT_EQ(a.losses[i], b.losses[i]) << "step " << i + 1;
  }
  ASSERT_EQ(a.params.size(), b.params.size());
  for (size_t p = 0; p < a.params.size(); ++p) {
    EXPECT_TRUE(BitwiseEqual(a.params[p], b.params[p]))
        << "parameter tensor " << p << " diverged";
  }
}

TEST(DeterminismTest, Fp16ActivationCodecIsBitwiseIdenticalAcrossThreads) {
  // The lossy spill codec changes *what* the backward pass sees — but
  // it must change it deterministically: encode is a pure elementwise
  // demotion and decode a pure promotion, so thread count still cannot
  // move a single bit of the 3-step trajectory.
  const TrainRun serial =
      TrainTrainerTinyGpt(/*threads=*/1, /*steps=*/3, "fp16", "f16");
  const TrainRun parallel =
      TrainTrainerTinyGpt(/*threads=*/4, /*steps=*/3, "fp16", "f16");
  ExpectBitwiseIdenticalRuns(serial, parallel);
}

TEST(DeterminismTest, IdentityCodecTrajectoryMatchesTheRawPathBitwise) {
  // The PR-acceptance pin: framing spilled activations with the
  // lossless identity codec (CRC + header, different store bytes) must
  // reproduce the no-codec trajectory bit for bit — the codec layer
  // may only transform the store leg, never the training computation.
  const TrainRun raw =
      TrainTrainerTinyGpt(/*threads=*/1, /*steps=*/3, "", "raw");
  const TrainRun framed =
      TrainTrainerTinyGpt(/*threads=*/1, /*steps=*/3, "identity", "id");
  ExpectBitwiseIdenticalRuns(raw, framed);
  // And the framed path stays thread-invariant too.
  const TrainRun framed4 =
      TrainTrainerTinyGpt(/*threads=*/4, /*steps=*/3, "identity", "id");
  ExpectBitwiseIdenticalRuns(framed, framed4);
}

}  // namespace
}  // namespace ratel
