#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <set>
#include <string>

#include "autograd/transformer.h"
#include "common/rng.h"
#include "common/units.h"
#include "core/activation_planner.h"
#include "core/hardware_profile.h"
#include "core/recompute_knapsack.h"
#include "hw/catalog.h"
#include "mem/tier_cache.h"
#include "model/transformer_config.h"
#include "runtime/checkpoint.h"
#include "runtime/dataset.h"
#include "runtime/ratel_trainer.h"

namespace ratel {
namespace {

std::string TempPath(const std::string& tag) {
  return ::testing::TempDir() + "/ratel_ext_" + tag + "_" +
         std::to_string(::getpid());
}

// ---------- SyntheticDataset ----------

TEST(SyntheticDatasetTest, ShapesAndRanges) {
  SyntheticDataset ds(SyntheticTask::kAffineMap, 32, 8, 1);
  const TokenBatch b = ds.EvalBatch(4);
  EXPECT_EQ(b.ids.size(), 32u);
  EXPECT_EQ(b.targets.size(), 32u);
  for (int64_t id : b.ids) {
    EXPECT_GE(id, 0);
    EXPECT_LT(id, 32);
  }
}

TEST(SyntheticDatasetTest, TasksAreWhatTheyClaim) {
  const int64_t v = 17, s = 6;
  for (SyntheticTask task :
       {SyntheticTask::kAffineMap, SyntheticTask::kCopyPrevious,
        SyntheticTask::kPairSum}) {
    SyntheticDataset ds(task, v, s, 7);
    const TokenBatch b = ds.EvalBatch(3);
    for (int64_t row = 0; row < 3; ++row) {
      const int64_t* ids = b.ids.data() + row * s;
      const int64_t* tgt = b.targets.data() + row * s;
      for (int64_t i = 0; i < s; ++i) {
        switch (task) {
          case SyntheticTask::kAffineMap:
            EXPECT_EQ(tgt[i], (ids[i] * 3 + 1) % v);
            break;
          case SyntheticTask::kCopyPrevious:
            EXPECT_EQ(tgt[i], ids[i > 0 ? i - 1 : 0]);
            break;
          case SyntheticTask::kPairSum:
            EXPECT_EQ(tgt[i], (ids[i] + (i > 0 ? ids[i - 1] : 0)) % v);
            break;
        }
      }
    }
  }
}

TEST(SyntheticDatasetTest, EvalBatchStableTrainStreamAdvances) {
  SyntheticDataset ds(SyntheticTask::kAffineMap, 32, 8, 3);
  const TokenBatch e1 = ds.EvalBatch(2);
  const TokenBatch t1 = ds.NextBatch(2);
  const TokenBatch t2 = ds.NextBatch(2);
  const TokenBatch e2 = ds.EvalBatch(2);
  EXPECT_EQ(e1.ids, e2.ids);   // eval stream independent of training draws
  EXPECT_NE(t1.ids, t2.ids);   // training stream advances
}

// ---------- Checkpoint ----------

TEST(CheckpointTest, SaveLoadRoundTrip) {
  TransferOptions xfer;
  xfer.dir = TempPath("ckpt_store");
  xfer.num_stripes = 2;
  xfer.chunk_bytes = 4096;
  auto engine = TransferEngine::Open(xfer);
  ASSERT_TRUE(engine.ok());
  OutOfCoreAdam adam(AdamConfig{}, engine->get());
  Rng rng(1);
  std::vector<float> w1(100), w2(37);
  for (auto& x : w1) x = static_cast<float>(rng.NextGaussian());
  for (auto& x : w2) x = static_cast<float>(rng.NextGaussian());
  ASSERT_TRUE(adam.Register("blk0/w", w1).ok());
  ASSERT_TRUE(adam.Register("blk1/w", w2).ok());

  const std::string path = TempPath("model.ckpt");
  ASSERT_TRUE(checkpoint::Save(adam, {"blk0/w", "blk1/w"}, path).ok());
  // The master-copy readout travels on the checkpoint flow.
  EXPECT_EQ((*engine)->stats().Flow(FlowClass::kCheckpoint).bytes_read,
            4 * (100 + 37));
  auto entries = checkpoint::Load(path);
  ASSERT_TRUE(entries.ok()) << entries.status().ToString();
  ASSERT_EQ(entries->size(), 2u);
  EXPECT_EQ((*entries)[0].name, "blk0/w");
  EXPECT_EQ((*entries)[0].values, w1);
  EXPECT_EQ((*entries)[1].name, "blk1/w");
  EXPECT_EQ((*entries)[1].values, w2);
}

TEST(CheckpointTest, RejectsGarbageAndMissing) {
  EXPECT_EQ(checkpoint::Load(TempPath("nonexistent")).status().code(),
            StatusCode::kNotFound);
  const std::string path = TempPath("garbage.ckpt");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite("NOTACKPT12345678", 1, 16, f);
    std::fclose(f);
  }
  EXPECT_EQ(checkpoint::Load(path).status().code(),
            StatusCode::kInvalidArgument);
}

// ---------- TierCache ----------

TEST(TierCacheTest, HitAfterPut) {
  auto store = BlockStore::Open(TempPath("tc1"), 2, 4096);
  ASSERT_TRUE(store.ok());
  TierCache cache(store->get(), 1 << 20);
  std::vector<uint8_t> data(1000, 7);
  ASSERT_TRUE(cache.Put("k", data.data(), data.size()).ok());
  std::vector<uint8_t> out(1000);
  ASSERT_TRUE(cache.Get("k", out.data(), out.size()).ok());
  EXPECT_EQ(out, data);
  EXPECT_EQ(cache.stats().hits, 1);
  EXPECT_EQ(cache.stats().misses, 0);
}

TEST(TierCacheTest, MissFallsThroughAndPromotes) {
  auto store = BlockStore::Open(TempPath("tc2"), 2, 4096);
  ASSERT_TRUE(store.ok());
  std::vector<uint8_t> data(512, 9);
  ASSERT_TRUE((*store)->Put("cold", data.data(), data.size()).ok());
  TierCache cache(store->get(), 1 << 20);
  std::vector<uint8_t> out(512);
  ASSERT_TRUE(cache.Get("cold", out.data(), out.size()).ok());
  EXPECT_EQ(cache.stats().misses, 1);
  ASSERT_TRUE(cache.Get("cold", out.data(), out.size()).ok());
  EXPECT_EQ(cache.stats().hits, 1);  // promoted on first miss
}

TEST(TierCacheTest, LruEvictionUnderPressure) {
  auto store = BlockStore::Open(TempPath("tc3"), 2, 4096);
  ASSERT_TRUE(store.ok());
  TierCache cache(store->get(), 2500);  // fits two 1000-byte blobs
  std::vector<uint8_t> data(1000, 1);
  ASSERT_TRUE(cache.Put("a", data.data(), data.size()).ok());
  ASSERT_TRUE(cache.Put("b", data.data(), data.size()).ok());
  std::vector<uint8_t> out(1000);
  ASSERT_TRUE(cache.Get("a", out.data(), out.size()).ok());  // a is hot
  ASSERT_TRUE(cache.Put("c", data.data(), data.size()).ok());  // evicts b
  EXPECT_GE(cache.stats().evictions, 1);
  const int64_t hits_before = cache.stats().hits;
  ASSERT_TRUE(cache.Get("a", out.data(), out.size()).ok());
  EXPECT_EQ(cache.stats().hits, hits_before + 1);  // a survived
  ASSERT_TRUE(cache.Get("b", out.data(), out.size()).ok());
  EXPECT_EQ(cache.stats().misses, 1);  // b was evicted -> store read
  EXPECT_LE(cache.stats().bytes_cached, 2500);
}

TEST(TierCacheTest, OversizedBlobBypassesCache) {
  auto store = BlockStore::Open(TempPath("tc4"), 2, 4096);
  ASSERT_TRUE(store.ok());
  TierCache cache(store->get(), 100);
  std::vector<uint8_t> data(1000, 2);
  ASSERT_TRUE(cache.Put("big", data.data(), data.size()).ok());
  EXPECT_EQ(cache.stats().bytes_cached, 0);
  std::vector<uint8_t> out(1000);
  ASSERT_TRUE(cache.Get("big", out.data(), out.size()).ok());  // via store
  EXPECT_EQ(out, data);
}

TEST(TierCacheTest, InvalidateDropsDramCopyOnly) {
  auto store = BlockStore::Open(TempPath("tc5"), 2, 4096);
  ASSERT_TRUE(store.ok());
  TierCache cache(store->get(), 1 << 20);
  std::vector<uint8_t> data(64, 3);
  ASSERT_TRUE(cache.Put("k", data.data(), data.size()).ok());
  cache.Invalidate("k");
  EXPECT_EQ(cache.stats().bytes_cached, 0);
  std::vector<uint8_t> out(64);
  ASSERT_TRUE(cache.Get("k", out.data(), out.size()).ok());  // store copy
  EXPECT_EQ(out, data);
}

// ---------- Recompute knapsack ----------

TEST(KnapsackTest, RespectsBudgetExactly) {
  auto cfg = LlmFromTableIV("6B");
  ASSERT_TRUE(cfg.ok());
  const WorkloadProfile wl = WorkloadProfile::Build(*cfg, 4);
  std::vector<ActivationUnit> optional;
  for (const auto& u : wl.activation_units()) {
    if (!u.inter_block) optional.push_back(u);
  }
  int64_t total = 0;
  for (const auto& u : optional) total += u.bytes;
  for (double frac : {0.1, 0.33, 0.7}) {
    const int64_t budget = static_cast<int64_t>(frac * total);
    const KnapsackPlan dp = SolveRecomputeKnapsack(optional, budget);
    EXPECT_LE(dp.bytes, budget);
    // With uniform unit sizes, DP must match the greedy optimum.
    const KnapsackPlan greedy = GreedyRecomputeKnapsack(optional, budget);
    EXPECT_NEAR(dp.flops_saved, greedy.flops_saved,
                1e-6 * greedy.flops_saved + 1.0);
  }
}

TEST(KnapsackTest, BeatsGreedyOnAdversarialInstance) {
  // Greedy-by-density takes the dense small item and wastes capacity;
  // the DP picks the two larger items worth more in total.
  std::vector<ActivationUnit> units(3);
  units[0] = {"dense", 0, 6, 10.0, false};   // density 1.67
  units[1] = {"bulk1", 0, 5, 7.0, false};    // density 1.4
  units[2] = {"bulk2", 0, 5, 7.0, false};    // density 1.4
  const KnapsackPlan dp = SolveRecomputeKnapsack(units, 10);
  const KnapsackPlan greedy = GreedyRecomputeKnapsack(units, 10);
  EXPECT_DOUBLE_EQ(dp.flops_saved, 14.0);
  EXPECT_DOUBLE_EQ(greedy.flops_saved, 10.0);
  EXPECT_LE(dp.bytes, 10);
}

TEST(KnapsackTest, DegenerateInputs) {
  std::vector<ActivationUnit> units(1);
  units[0] = {"u", 0, 100, 5.0, false};
  EXPECT_TRUE(SolveRecomputeKnapsack(units, 0).chosen.empty());
  EXPECT_TRUE(SolveRecomputeKnapsack({}, 100).chosen.empty());
  EXPECT_TRUE(SolveRecomputeKnapsack(units, 99).chosen.empty());
  EXPECT_EQ(SolveRecomputeKnapsack(units, 100).chosen.size(), 1u);
}

// ---------- Planner order-policy ablation ----------

TEST(SwapOrderPolicyTest, BenefitOrderNeverWorse) {
  auto cfg = LlmFromTableIV("13B");
  ASSERT_TRUE(cfg.ok());
  const ServerConfig server =
      catalog::EvaluationServer(catalog::Rtx4090(), 256 * kGiB, 12);
  for (int batch : {16, 32, 64}) {
    const WorkloadProfile wl = WorkloadProfile::Build(*cfg, batch);
    auto hw = HardwareProfiler(server).Profile(wl);
    ASSERT_TRUE(hw.ok());
    const CostModel cm(*hw, wl);
    const ActivationPlan benefit =
        ActivationPlanner(cm, SwapOrderPolicy::kOffloadingBenefit).Plan();
    const ActivationPlan naive =
        ActivationPlanner(cm, SwapOrderPolicy::kModelOrder).Plan();
    EXPECT_LE(benefit.predicted_iter_time,
              naive.predicted_iter_time * (1.0 + 1e-9))
        << "batch " << batch;
  }
}

// ---------- Activation spill through the real runtime ----------

TEST(ActivationSpillTest, CollectsIntermediateNodes) {
  ag::TinyGptConfig cfg;
  cfg.vocab_size = 32;
  cfg.seq_len = 8;
  cfg.hidden_dim = 16;
  cfg.num_heads = 2;
  cfg.num_layers = 1;
  ag::TinyGpt model(cfg, 5);
  Rng rng(1);
  std::vector<int64_t> ids(8), targets(8);
  for (auto& v : ids) v = static_cast<int64_t>(rng.NextBelow(32));
  for (auto& v : targets) v = static_cast<int64_t>(rng.NextBelow(32));
  ag::Variable loss = model.Loss(ids, targets, 1);
  const auto nodes = ag::CollectIntermediateNodes(loss);
  EXPECT_GT(nodes.size(), 10u);
  std::set<const ag::Node*> unique;
  for (const auto& n : nodes) {
    EXPECT_FALSE(n->inputs.empty());  // no leaves
    unique.insert(n.get());
  }
  EXPECT_EQ(unique.size(), nodes.size());  // no duplicates
}

TEST(ActivationSpillTest, SpillPreservesTrainingNumerics) {
  auto run = [&](bool spill) {
    ag::TinyGptConfig cfg;
    cfg.vocab_size = 32;
    cfg.seq_len = 8;
    cfg.hidden_dim = 16;
    cfg.num_heads = 2;
    cfg.num_layers = 2;
    ag::TinyGpt model(cfg, 77);
    TrainerOptions opts;
    opts.spill_activations = spill;
    opts.store_dir = TempPath(spill ? "spill_on" : "spill_off");
    auto trainer = RatelTrainer::Create(&model, opts);
    EXPECT_TRUE(trainer.ok());
    SyntheticDataset ds(SyntheticTask::kAffineMap, 32, 8, 9);
    std::vector<float> final_w;
    for (int step = 0; step < 4; ++step) {
      const TokenBatch b = ds.NextBatch(2);
      auto loss = (*trainer)->TrainStep(b.ids, b.targets, 2);
      EXPECT_TRUE(loss.ok());
    }
    EXPECT_TRUE(
        (*trainer)->optimizer().FetchMasterParams("blk0/w_qkv", &final_w)
            .ok());
    const int64_t spilled = (*trainer)->last_step_stats()
                                .activation_bytes_spilled;
    if (spill) {
      EXPECT_GT(spilled, 0);
    } else {
      EXPECT_EQ(spilled, 0);
    }
    return final_w;
  };
  EXPECT_EQ(run(false), run(true));  // bit-identical parameters
}

}  // namespace
}  // namespace ratel
