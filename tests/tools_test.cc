#include "tools/flag_parser.h"

#include <gtest/gtest.h>

#include <vector>

namespace ratel::tools {
namespace {

FlagParser Parse(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return FlagParser(static_cast<int>(args.size()),
                    const_cast<char**>(args.data()));
}

TEST(FlagParserTest, EqualsAndSpaceSyntax) {
  const FlagParser f = Parse({"--model=13B", "--mem", "256"});
  EXPECT_EQ(f.GetString("model"), "13B");
  EXPECT_EQ(f.GetInt("mem"), 256);
}

TEST(FlagParserTest, DefaultsWhenAbsent) {
  const FlagParser f = Parse({});
  EXPECT_EQ(f.GetString("model", "6B"), "6B");
  EXPECT_EQ(f.GetInt("mem", 128), 128);
  EXPECT_FALSE(f.GetBool("json"));
  EXPECT_FALSE(f.Has("anything"));
}

TEST(FlagParserTest, BareFlagIsTrue) {
  const FlagParser f = Parse({"--json", "--trace"});
  EXPECT_TRUE(f.GetBool("json"));
  EXPECT_TRUE(f.GetBool("trace"));
  EXPECT_TRUE(f.Has("json"));
}

TEST(FlagParserTest, ExplicitFalse) {
  const FlagParser f = Parse({"--json=false", "--trace=0"});
  EXPECT_FALSE(f.GetBool("json", true));
  EXPECT_FALSE(f.GetBool("trace", true));
}

TEST(FlagParserTest, BareFlagBeforeAnotherFlag) {
  // "--json --mem 64": --json must not swallow "--mem".
  const FlagParser f = Parse({"--json", "--mem", "64"});
  EXPECT_TRUE(f.GetBool("json"));
  EXPECT_EQ(f.GetInt("mem"), 64);
}

TEST(FlagParserTest, PositionalArgumentsPreserved) {
  const FlagParser f = Parse({"input.txt", "--mem=1", "other"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "input.txt");
  EXPECT_EQ(f.positional()[1], "other");
}

}  // namespace
}  // namespace ratel::tools
