// Property-based suites: exhaustive fp16 round-trip, conservation laws
// of the discrete-event engine, and workload/feasibility invariants
// swept across the full Table IV model grid.

#include <gtest/gtest.h>
#include <unistd.h>

#include <array>
#include <cmath>
#include <cstring>
#include <deque>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "common/checksum.h"
#include "common/fp16.h"
#include "common/rng.h"
#include "common/units.h"
#include "core/activation_planner.h"
#include "core/hardware_profile.h"
#include "core/ratel_system.h"
#include "hw/catalog.h"
#include "model/transformer_config.h"
#include "sim/engine.h"
#include "storage/fair_queue.h"
#include "storage/fault_injector.h"
#include "storage/io_scheduler.h"
#include "xfer/codec.h"
#include "xfer/transfer_engine.h"

namespace ratel {
namespace {

// ---------- fp16: exhaustive over every bit pattern ----------

TEST(Fp16PropertyTest, EveryHalfRoundTripsExactly) {
  // HalfToFloat is exact, and FloatToHalf of an exactly-representable
  // value must return the identical bit pattern — for all 65536 halfs
  // except NaNs (payloads may canonicalize).
  for (uint32_t bits = 0; bits <= 0xFFFF; ++bits) {
    const Fp16 h = static_cast<Fp16>(bits);
    const uint32_t exp = (h >> 10) & 0x1F;
    const uint32_t mant = h & 0x3FF;
    if (exp == 0x1F && mant != 0) continue;  // NaN
    const float f = HalfToFloat(h);
    EXPECT_EQ(FloatToHalf(f), h)
        << "bits 0x" << std::hex << bits << " -> " << f;
  }
}

TEST(Fp16PropertyTest, MonotoneOnPositives) {
  // Conversion preserves order for positive halfs.
  float prev = -1.0f;
  for (uint32_t bits = 0; bits < 0x7C00; ++bits) {  // up to +inf
    const float f = HalfToFloat(static_cast<Fp16>(bits));
    EXPECT_GT(f, prev) << bits;
    prev = f;
  }
}

TEST(Fp16PropertyTest, RoundingNeverMovesMoreThanHalfUlp) {
  Rng rng(99);
  for (int i = 0; i < 50000; ++i) {
    const float x =
        static_cast<float>(rng.NextGaussian()) * 100.0f;
    const Fp16 h = FloatToHalf(x);
    const float back = HalfToFloat(h);
    // Neighbouring halfs must not be strictly closer to x.
    const float lo = HalfToFloat(static_cast<Fp16>(h - 1));
    const float hi = HalfToFloat(static_cast<Fp16>(h + 1));
    const float err = std::fabs(back - x);
    if (!std::isinf(lo)) {
      EXPECT_LE(err, std::fabs(lo - x) + 1e-12f) << x;
    }
    if (!std::isinf(hi) && (h & 0x7FFF) != 0) {
      EXPECT_LE(err, std::fabs(hi - x) + 1e-12f) << x;
    }
  }
}

// ---------- DES conservation laws ----------

TEST(SimConservationTest, WorkNeverExceedsCapacityAndMatchesDemand) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    SimEngine eng;
    const int n_res = 2 + static_cast<int>(rng.NextBelow(3));
    std::vector<ResourceId> res;
    std::vector<double> rates;
    for (int r = 0; r < n_res; ++r) {
      rates.push_back(1.0 + rng.NextDouble() * 9.0);
      res.push_back(eng.AddResource("r" + std::to_string(r), rates.back()));
    }
    const int n_tasks = 20 + static_cast<int>(rng.NextBelow(60));
    std::vector<double> demand(n_res, 0.0);
    std::vector<TaskId> tasks;
    for (int i = 0; i < n_tasks; ++i) {
      const int r = static_cast<int>(rng.NextBelow(n_res));
      const double amount = rng.NextDouble() * 5.0;
      std::vector<TaskId> deps;
      if (!tasks.empty() && rng.NextBelow(2) == 0) {
        deps.push_back(tasks[rng.NextBelow(tasks.size())]);
      }
      tasks.push_back(eng.AddTask("t", res[r], amount, deps));
      demand[r] += amount;
    }
    ASSERT_TRUE(eng.Run().ok());
    const double span = eng.Makespan();
    for (int r = 0; r < n_res; ++r) {
      const double busy = eng.ResourceBusyTime(res[r], 0.0, span);
      const double work = eng.ResourceWorkDone(res[r], 0.0, span);
      EXPECT_LE(busy, span + 1e-9);
      // Capacity: work <= rate * busy-time; demand conservation: every
      // byte/FLOP requested was served.
      EXPECT_LE(work, rates[r] * busy + 1e-6);
      EXPECT_NEAR(work, demand[r], 1e-6 * (demand[r] + 1.0));
    }
    // Causality: tasks start after their dependencies finish.
    const auto records = eng.TaskRecords();
    (void)records;
  }
}

TEST(SimConservationTest, DependenciesRespectedInRandomDags) {
  Rng rng(17);
  SimEngine eng;
  const ResourceId r0 = eng.AddResource("a", 2.0);
  const ResourceId r1 = eng.AddResource("b", 3.0);
  std::vector<TaskId> tasks;
  std::vector<std::vector<TaskId>> deps_of;
  for (int i = 0; i < 120; ++i) {
    std::vector<TaskId> deps;
    for (int d = 0; d < 3 && !tasks.empty(); ++d) {
      if (rng.NextBelow(3) == 0) {
        deps.push_back(tasks[rng.NextBelow(tasks.size())]);
      }
    }
    tasks.push_back(eng.AddTask("t", rng.NextBelow(2) ? r0 : r1,
                                rng.NextDouble() * 2.0, deps));
    deps_of.push_back(deps);
  }
  ASSERT_TRUE(eng.Run().ok());
  for (size_t i = 0; i < tasks.size(); ++i) {
    for (TaskId d : deps_of[i]) {
      EXPECT_GE(eng.timing(tasks[i]).start, eng.timing(d).finish - 1e-9);
    }
  }
}

// ---------- Workload invariants across the Table IV grid ----------

class TableIVWorkloadTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TableIVWorkloadTest, StructuralInvariants) {
  const auto [model_idx, batch] = GetParam();
  const TransformerConfig cfg = AllTableIVModels()[model_idx];
  const WorkloadProfile wl = WorkloadProfile::Build(cfg, batch);

  // 8 activation units per block.
  EXPECT_EQ(wl.activation_units().size(),
            static_cast<size_t>(8 * cfg.num_layers));
  // Exactly one inter-block checkpoint per block, 1/16 of block bytes.
  int inter = 0;
  for (const auto& u : wl.activation_units()) inter += u.inter_block;
  EXPECT_EQ(inter, cfg.num_layers);
  EXPECT_EQ(wl.inter_block_activation_bytes() * 16,
            wl.total_activation_bytes());
  // Backward-is-2x-forward bookkeeping (Table I).
  EXPECT_GT(wl.forward_flops(), 0.0);
  // Parameters dominated by blocks; embeddings < 10% for >= 6B models.
  EXPECT_LT(cfg.EmbeddingParameterCount(),
            0.10 * cfg.ParameterCount());
  // Per-block working set is positive and grows with batch.
  EXPECT_GT(wl.PerBlockGpuWorkingSetBytes(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, TableIVWorkloadTest,
    ::testing::Combine(::testing::Range(0, 8), ::testing::Values(1, 16)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
      return AllTableIVModels()[std::get<0>(info.param)].name + "_b" +
             std::to_string(std::get<1>(info.param));
    });

// ---------- Feasibility monotonicity ----------

class FeasibilityMonotoneTest : public ::testing::TestWithParam<int> {};

TEST_P(FeasibilityMonotoneTest, MoreMemoryNeverHurtsRatel) {
  const TransformerConfig cfg = AllTableIVModels()[GetParam()];
  RatelSystem ratel;
  bool was_feasible = false;
  for (int64_t mem : {128, 256, 384, 512, 640, 768, 1024}) {
    const ServerConfig s = catalog::EvaluationServer(
        catalog::Rtx4090(), mem * kGiB, 12);
    const bool feasible = ratel.CanTrain(cfg, 1, s);
    EXPECT_TRUE(feasible || !was_feasible)
        << cfg.name << " became infeasible at " << mem << " GiB";
    was_feasible = feasible || was_feasible;
  }
}

TEST_P(FeasibilityMonotoneTest, MoreBatchNeverHelps) {
  const TransformerConfig cfg = AllTableIVModels()[GetParam()];
  RatelSystem ratel;
  const ServerConfig s = catalog::EvaluationServer(
      catalog::Rtx4090(), 768 * kGiB, 12);
  bool prev = true;
  for (int batch : {1, 4, 16, 64, 256}) {
    const bool feasible = ratel.CanTrain(cfg, batch, s);
    EXPECT_TRUE(!feasible || prev)
        << cfg.name << " regained feasibility at batch " << batch;
    prev = feasible;
  }
}

INSTANTIATE_TEST_SUITE_P(AllModels, FeasibilityMonotoneTest,
                         ::testing::Range(0, 8),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return AllTableIVModels()[info.param].name;
                         });

// ---------- Cost-model sensitivity ----------

TEST(CostModelSensitivityTest, FasterDevicesNeverSlower) {
  auto cfg = LlmFromTableIV("13B");
  ASSERT_TRUE(cfg.ok());
  const WorkloadProfile wl = WorkloadProfile::Build(*cfg, 32);
  const ServerConfig s = catalog::EvaluationServer(
      catalog::Rtx4090(), 256 * kGiB, 12);
  auto base = HardwareProfiler(s).Profile(wl);
  ASSERT_TRUE(base.ok());
  const double a = 30e9;
  const double t0 = CostModel(*base, wl).IterTimeAt(a);
  for (double* field : {&base->thp_g, &base->bw_g, &base->bw_s2m,
                        &base->bw_m2s}) {
    HardwareProfile hw = *base;
    const ptrdiff_t offset =
        reinterpret_cast<const char*>(field) -
        reinterpret_cast<const char*>(&(*base));
    double* target =
        reinterpret_cast<double*>(reinterpret_cast<char*>(&hw) + offset);
    *target *= 2.0;
    const double t = CostModel(hw, wl).IterTimeAt(a);
    EXPECT_LE(t, t0 + 1e-9);
  }
}

TEST(CostModelSensitivityTest, MoreSpareMemoryNeverSlower) {
  auto cfg = LlmFromTableIV("13B");
  ASSERT_TRUE(cfg.ok());
  const WorkloadProfile wl = WorkloadProfile::Build(*cfg, 48);
  const ServerConfig s = catalog::EvaluationServer(
      catalog::Rtx4090(), 256 * kGiB, 3);
  auto hw = HardwareProfiler(s).Profile(wl);
  ASSERT_TRUE(hw.ok());
  double prev = 1e300;
  for (int64_t extra = 0; extra <= 200; extra += 50) {
    HardwareProfile h2 = *hw;
    h2.mem_avail_m = hw->mem_avail_m + extra * kGiB;
    const CostModel cm(h2, wl);
    const double t = ActivationPlanner(cm).Plan().predicted_iter_time;
    EXPECT_LE(t, prev + 1e-9) << extra;
    prev = t;
  }
}

// ---------- Retry/backoff schedule invariants ----------

TEST(RetryPolicyPropertyTest, ScheduleIsDeterministicForAFixedSeed) {
  Rng rng(31);
  for (int trial = 0; trial < 200; ++trial) {
    RetryPolicy p;
    p.max_attempts = 1 + static_cast<int>(rng.NextBelow(10));
    p.base_backoff_s = 1e-5 * (1.0 + static_cast<double>(rng.NextBelow(100)));
    p.backoff_multiplier = 1.0 + 0.25 * static_cast<double>(rng.NextBelow(12));
    p.max_backoff_s = p.base_backoff_s * (1 + rng.NextBelow(64));
    p.backoff_deadline_s =
        p.base_backoff_s * (1 + static_cast<double>(rng.NextBelow(256)));
    p.jitter_seed = rng.NextU64();
    // Same policy, same seed: bit-for-bit the same schedule. The
    // scheduler's recovery behaviour is replayable, not "roughly so".
    EXPECT_EQ(BackoffSchedule(p), BackoffSchedule(p));
    for (int k = 1; k < p.max_attempts; ++k) {
      EXPECT_EQ(RetryBackoffSeconds(p, k), RetryBackoffSeconds(p, k));
    }
  }
}

TEST(RetryPolicyPropertyTest, EverySleepIsJitteredClampedExponential) {
  Rng rng(32);
  for (int trial = 0; trial < 200; ++trial) {
    RetryPolicy p;
    p.max_attempts = 2 + static_cast<int>(rng.NextBelow(8));
    p.base_backoff_s = 1e-5 * (1.0 + static_cast<double>(rng.NextBelow(100)));
    p.backoff_multiplier = 1.0 + 0.5 * static_cast<double>(rng.NextBelow(6));
    p.max_backoff_s = p.base_backoff_s * (1 + rng.NextBelow(64));
    p.backoff_deadline_s = 1e9;  // no truncation in this sweep
    p.jitter_seed = rng.NextU64();
    for (int k = 1; k < p.max_attempts; ++k) {
      double ideal = p.base_backoff_s;
      for (int i = 1; i < k; ++i) ideal *= p.backoff_multiplier;
      const double clamped = std::min(ideal, p.max_backoff_s);
      const double slept = RetryBackoffSeconds(p, k);
      // Jitter shrinks, never grows, and never below 75% of nominal.
      EXPECT_GE(slept, 0.75 * clamped - 1e-15) << "retry " << k;
      EXPECT_LT(slept, clamped + 1e-15) << "retry " << k;
    }
  }
}

TEST(RetryPolicyPropertyTest, CumulativeBackoffNeverExceedsTheDeadline) {
  Rng rng(33);
  for (int trial = 0; trial < 500; ++trial) {
    RetryPolicy p;
    p.max_attempts = 1 + static_cast<int>(rng.NextBelow(12));
    p.base_backoff_s = 1e-5 * (1.0 + static_cast<double>(rng.NextBelow(500)));
    p.backoff_multiplier = 1.0 + 0.25 * static_cast<double>(rng.NextBelow(12));
    p.max_backoff_s = p.base_backoff_s * (1 + rng.NextBelow(64));
    // Deadlines from "tighter than one sleep" to "covers everything".
    p.backoff_deadline_s =
        p.base_backoff_s * 0.5 * (1 + static_cast<double>(rng.NextBelow(128)));
    p.jitter_seed = rng.NextU64();
    const std::vector<double> sched = BackoffSchedule(p);
    EXPECT_LE(sched.size(), static_cast<size_t>(p.max_attempts - 1));
    double total = 0.0;
    for (size_t k = 0; k < sched.size(); ++k) {
      EXPECT_EQ(sched[k], RetryBackoffSeconds(p, static_cast<int>(k) + 1));
      total += sched[k];
    }
    // The bound the pipeline relies on: a request can never sit in
    // backoff longer than the configured deadline.
    EXPECT_LE(total, p.backoff_deadline_s + 1e-12);
  }
}

TEST(RetryPolicyPropertyTest, OnlyTransientCodesAreRetryable) {
  EXPECT_TRUE(IsRetryableIoError(Status::Unavailable("transient")));
  EXPECT_TRUE(IsRetryableIoError(Status::IoError("transient")));
  EXPECT_FALSE(IsRetryableIoError(Status::Ok()));
  EXPECT_FALSE(IsRetryableIoError(Status::DataLoss("checksum mismatch")));
  EXPECT_FALSE(IsRetryableIoError(Status::NotFound("gone")));
  EXPECT_FALSE(IsRetryableIoError(Status::InvalidArgument("bad size")));
}

// ---------- Fault-injection schedule invariants ----------

TEST(FaultSchedulePropertyTest, ReadFaultsFireExactlyEveryKthOperation) {
  for (int k : {2, 3, 5, 8}) {
    FaultConfig cfg;
    cfg.seed = 0xABCDEFull + k;
    cfg.read_error_every = k;
    FaultInjector a(cfg), b(cfg);
    for (const std::string key : {"p16/wte", "m/block0", "chan"}) {
      std::vector<int> fault_ops;
      for (int n = 1; n <= 6 * k; ++n) {
        const bool faulted_a = !a.OnBlobRead(key).ok();
        const bool faulted_b = !b.OnBlobRead(key).ok();
        // Same seed => identical decisions, op for op.
        EXPECT_EQ(faulted_a, faulted_b) << key << " op " << n;
        if (faulted_a) fault_ops.push_back(n);
      }
      // Exactly every k-th op of the key faults: 6 faults in 6k ops,
      // consecutive faults exactly k apart, first within the first k.
      ASSERT_EQ(fault_ops.size(), 6u) << key;
      EXPECT_LE(fault_ops[0], k);
      for (size_t i = 1; i < fault_ops.size(); ++i) {
        EXPECT_EQ(fault_ops[i] - fault_ops[i - 1], k) << key;
      }
    }
  }
}

TEST(FaultSchedulePropertyTest, RetryAfterAFaultDeterministicallyPasses) {
  // The contract the retry loop leans on: with every >= 2, the op right
  // after a fault never faults, so max_attempts = 2 already converges.
  FaultConfig cfg;
  cfg.seed = 77;
  cfg.write_error_every = 2;
  FaultInjector inj(cfg);
  int64_t torn = -1;
  bool prev_faulted = false;
  for (int n = 0; n < 40; ++n) {
    const bool faulted = !inj.OnBlobWrite("p32/w", 1024, &torn).ok();
    if (prev_faulted) {
      EXPECT_FALSE(faulted) << "op " << n;
    }
    prev_faulted = faulted;
  }
}

// ---------- CRC-32C ----------

TEST(ChecksumPropertyTest, MatchesTheCastagnoliCheckValue) {
  // The standard CRC-32C check vector: crc of "123456789".
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  EXPECT_EQ(Crc32c("", 0), 0u);
}

TEST(ChecksumPropertyTest, ChainingEqualsOneShotOverTheConcatenation) {
  Rng rng(41);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<uint8_t> buf(1 + rng.NextBelow(512));
    for (auto& c : buf) c = static_cast<uint8_t>(rng.NextU64());
    const uint32_t whole = Crc32c(buf.data(), buf.size());
    const size_t cut = rng.NextBelow(buf.size() + 1);
    const uint32_t part = Crc32c(buf.data() + cut, buf.size() - cut,
                                 Crc32c(buf.data(), cut));
    EXPECT_EQ(part, whole);
    Crc32cAccumulator acc;
    for (size_t i = 0; i < buf.size(); ++i) acc.Update(&buf[i], 1);
    EXPECT_EQ(acc.value(), whole);
  }
}

TEST(ChecksumPropertyTest, SingleBitFlipsAlwaysChangeTheChecksum) {
  // CRC-32C detects every single-bit error — the torn-write /
  // bit-rot class the checkpoint shards guard against.
  Rng rng(42);
  std::vector<uint8_t> buf(64);
  for (auto& c : buf) c = static_cast<uint8_t>(rng.NextU64());
  const uint32_t base = Crc32c(buf.data(), buf.size());
  for (size_t byte = 0; byte < buf.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      buf[byte] ^= (1u << bit);
      EXPECT_NE(Crc32c(buf.data(), buf.size()), base)
          << "byte " << byte << " bit " << bit;
      buf[byte] ^= (1u << bit);
    }
  }
}

// ---------- Fair-share (DWRR) invariants ----------

TEST(FairSharePropertyTest, WorkConservingAndPerLaneFifoUnderMixedLoad) {
  // Random mixed-flow load over four tenant lanes: interleaved pushes
  // and pops with request sizes spanning three orders of magnitude.
  // Invariants: (a) work conservation — PopNext always yields an item
  // while any lane is non-empty, and everything pushed is eventually
  // popped; (b) FIFO holds within every (lane) regardless of the
  // cross-lane interleaving the deficits pick.
  FairQueue<std::pair<int, int>> q(/*quantum_bytes=*/512);
  q.SetWeight(2, 3);
  q.SetWeight(3, 7);
  Rng rng(2024);
  std::array<std::deque<int>, 4> expected;
  std::array<int, 4> next_value{};
  int64_t pushed = 0;
  int64_t popped = 0;
  for (int round = 0; round < 5000; ++round) {
    if (q.empty() || rng.NextBelow(100) < 55) {
      const int tenant = static_cast<int>(rng.NextBelow(4));
      const int64_t size = 1 + static_cast<int64_t>(rng.NextBelow(4096));
      q.Push(tenant, size, {tenant, next_value[tenant]});
      expected[tenant].push_back(next_value[tenant]++);
      ++pushed;
    } else {
      const std::pair<int, int> item = q.PopNext();
      ASSERT_FALSE(expected[item.first].empty());
      EXPECT_EQ(item.second, expected[item.first].front())
          << "lane " << item.first << " violated FIFO";
      expected[item.first].pop_front();
      ++popped;
    }
  }
  while (!q.empty()) {
    const std::pair<int, int> item = q.PopNext();
    ASSERT_FALSE(expected[item.first].empty());
    EXPECT_EQ(item.second, expected[item.first].front());
    expected[item.first].pop_front();
    ++popped;
  }
  EXPECT_EQ(popped, pushed);
  for (const auto& lane : expected) EXPECT_TRUE(lane.empty());
}

TEST(FairSharePropertyTest, ServedBytesConvergeToConfiguredWeights) {
  // Three permanently backlogged lanes with weights 1:2:4 and random
  // request sizes: the byte shares served must converge to the weight
  // ratio (classic DWRR guarantee, within one-quantum slack per visit).
  const std::array<int, 3> kWeights = {1, 2, 4};
  FairQueue<std::pair<int, int64_t>> q(/*quantum_bytes=*/512);
  Rng rng(7);
  std::array<int64_t, 3> outstanding{};
  auto refill = [&](int tenant) {
    // Keep every lane backlogged so no idle-share redistribution kicks
    // in; the shares must then track the weights alone.
    while (outstanding[tenant] < 64 * 1024) {
      const int64_t size = 1 + static_cast<int64_t>(rng.NextBelow(2048));
      q.Push(tenant, size, {tenant, size});
      outstanding[tenant] += size;
    }
  };
  for (int t = 0; t < 3; ++t) {
    q.SetWeight(t, kWeights[t]);
    refill(t);
  }
  int64_t served_total = 0;
  while (served_total < 4 << 20) {
    const std::pair<int, int64_t> item = q.PopNext();
    outstanding[item.first] -= item.second;
    served_total += item.second;
    refill(item.first);
  }
  const double weight_total = kWeights[0] + kWeights[1] + kWeights[2];
  for (int t = 0; t < 3; ++t) {
    const double share =
        static_cast<double>(q.served_bytes(t)) / served_total;
    const double target = kWeights[t] / weight_total;
    EXPECT_NEAR(share, target, 0.05)
        << "tenant " << t << " share " << share << " target " << target;
  }
}

// ---------- Offload-codec invariants ----------

std::vector<float> RandomFloatTensor(int64_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.NextGaussian()) * 2.0f;
  return v;
}

std::vector<float> RoundTrip(const Codec& codec, const std::vector<float>& in) {
  const int64_t logical = static_cast<int64_t>(in.size()) * 4;
  std::vector<uint8_t> frame(FrameSizeFor(codec, logical));
  EncodeFrame(codec, reinterpret_cast<const uint8_t*>(in.data()), logical,
              frame.data());
  std::vector<float> out(in.size());
  EXPECT_TRUE(DecodeFrame(frame.data(), frame.size(),
                          reinterpret_cast<uint8_t*>(out.data()), logical)
                  .ok());
  return out;
}

TEST(CodecPropertyTest, DecodeEncodeErrorIsBoundedPerCodec) {
  // Per-codec error law over random tensors and seeds:
  //   identity — decode(encode(x)) == x, bitwise;
  //   fp16     — elementwise exactly FloatToHalf rounding, so relative
  //              error <= 2^-11 for values in the binary16 normal range;
  //   topk     — kept elements bitwise exact, dropped elements exactly
  //              zero, so the squared error equals the dropped energy.
  auto identity = MakeIdentityCodec();
  auto fp16 = MakeFp16Codec();
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    Rng rng(9000 + seed);
    const int64_t n = 1 + static_cast<int64_t>(rng.NextBelow(700));
    const std::vector<float> x = RandomFloatTensor(n, seed);

    const std::vector<float> id_out = RoundTrip(*identity, x);
    EXPECT_EQ(0, std::memcmp(id_out.data(), x.data(), n * 4)) << seed;

    const std::vector<float> half_out = RoundTrip(*fp16, x);
    for (int64_t i = 0; i < n; ++i) {
      ASSERT_EQ(half_out[i], HalfToFloat(FloatToHalf(x[i]))) << seed;
      const float ax = std::fabs(x[i]);
      if (ax >= 6.2e-5f && ax <= 65504.0f) {  // binary16 normal range
        EXPECT_LE(std::fabs(half_out[i] - x[i]), ax * (1.0f / 2048.0f))
            << "seed " << seed << " i " << i;
      }
    }

    const int64_t k = 1 + static_cast<int64_t>(rng.NextBelow(n));
    auto topk = MakeTopKCodec(k);
    const std::vector<float> sparse = RoundTrip(*topk, x);
    double dropped_energy = 0.0, error_energy = 0.0;
    int64_t kept = 0;
    for (int64_t i = 0; i < n; ++i) {
      if (sparse[i] != 0.0f || x[i] == 0.0f) {
        ASSERT_EQ(sparse[i], x[i]) << "kept element not exact";
        ++kept;
      } else {
        dropped_energy += static_cast<double>(x[i]) * x[i];
      }
      const double e = static_cast<double>(sparse[i]) - x[i];
      error_energy += e * e;
    }
    EXPECT_LE(kept, std::min(k, n));
    EXPECT_DOUBLE_EQ(error_energy, dropped_energy) << seed;
  }
}

TEST(CodecPropertyTest, EncodedFrameSizeIsMonotoneInK) {
  // More kept coefficients can never shrink a top-k frame, and the size
  // saturates exactly at k == n (further k buys nothing).
  for (int64_t n : {1, 7, 64, 333}) {
    const int64_t logical = n * 4 + 2;  // plus an odd tail
    int64_t prev = -1;
    for (int64_t k = 1; k <= n + 8; ++k) {
      auto codec = MakeTopKCodec(k);
      const int64_t size = FrameSizeFor(*codec, logical);
      if (prev >= 0) {
        EXPECT_GE(size, prev) << "n=" << n << " k=" << k;
        if (k <= n) {
          EXPECT_GT(size, prev) << "n=" << n << " k=" << k;
        } else {
          EXPECT_EQ(size, prev) << "n=" << n << " k=" << k;
        }
      }
      prev = size;
    }
  }
}

TEST(CodecPropertyTest, CompressionRatioStatsReconcileExactly) {
  // Mixed codec'd and raw traffic through one engine: for every flow,
  // ratio * encoded bytes must equal logical bytes *exactly* (the ratio
  // is defined as their quotient, never sampled), and the per-flow
  // encoded totals must sum to the store totals byte-for-byte.
  TransferOptions opts;
  opts.dir = ::testing::TempDir() + "/ratel_codec_prop_" +
             std::to_string(::getpid());
  opts.num_stripes = 4;
  opts.chunk_bytes = 4096;
  opts.codec.spec(FlowClass::kActivationSpill) = "fp16";
  opts.codec.spec(FlowClass::kGradState) = "topk:24";
  opts.codec.spec(FlowClass::kCheckpoint) = "identity";
  // kParamFetch and kDeferredState stay raw: encoded == logical there.
  auto engine = TransferEngine::Open(opts);
  ASSERT_TRUE(engine.ok());

  Rng rng(321);
  constexpr FlowClass kFlows[] = {
      FlowClass::kParamFetch, FlowClass::kGradState,
      FlowClass::kActivationSpill, FlowClass::kCheckpoint,
      FlowClass::kDeferredState,
  };
  int blob = 0;
  for (int round = 0; round < 3; ++round) {
    for (FlowClass flow : kFlows) {
      const int64_t floats = 16 + static_cast<int64_t>(rng.NextBelow(2048));
      const std::vector<float> data = RandomFloatTensor(floats, 55 + blob);
      const int64_t bytes = floats * 4;
      const std::string key = "b/" + std::to_string(blob++);
      ASSERT_TRUE((*engine)->Write(flow, key, data.data(), bytes).ok());
      std::vector<float> out(floats);
      ASSERT_TRUE((*engine)->Read(flow, key, out.data(), bytes).ok());
    }
  }

  const TransferStats stats = (*engine)->stats();
  int64_t encoded_written = 0, encoded_read = 0;
  for (int f = 0; f < kNumFlowClasses; ++f) {
    const FlowCounters& c = stats.flow[f];
    // Exact reconciliation, not approximate: the ratio times the
    // encoded bytes reproduces the logical bytes it was derived from.
    EXPECT_DOUBLE_EQ(
        c.WriteCompressionRatio() * static_cast<double>(c.encoded_bytes_written),
        static_cast<double>(c.bytes_written))
        << "flow " << f;
    EXPECT_DOUBLE_EQ(
        c.ReadCompressionRatio() * static_cast<double>(c.encoded_bytes_read),
        static_cast<double>(c.bytes_read - c.bytes_from_cache))
        << "flow " << f;
    // Codec'd flows did encode/decode work; raw flows did none.
    const FlowClass flow = static_cast<FlowClass>(f);
    const bool coded = (*engine)->codecs().ForFlow(flow) != nullptr;
    EXPECT_EQ(c.encodes > 0, coded) << "flow " << f;
    EXPECT_EQ(c.decodes > 0, coded) << "flow " << f;
    encoded_written += c.encoded_bytes_written;
    encoded_read += c.encoded_bytes_read;
  }
  // The store moved exactly the encoded bytes — nothing more, nothing
  // hidden: mixed codec/raw accounting reconciles byte-for-byte.
  EXPECT_EQ(encoded_written, stats.store_bytes_written);
  EXPECT_EQ(encoded_read, stats.store_bytes_read);
}

}  // namespace
}  // namespace ratel
