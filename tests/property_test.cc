// Property-based suites: exhaustive fp16 round-trip, conservation laws
// of the discrete-event engine, and workload/feasibility invariants
// swept across the full Table IV model grid.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>
#include <vector>

#include "common/fp16.h"
#include "common/rng.h"
#include "common/units.h"
#include "core/activation_planner.h"
#include "core/hardware_profile.h"
#include "core/ratel_system.h"
#include "hw/catalog.h"
#include "model/transformer_config.h"
#include "sim/engine.h"

namespace ratel {
namespace {

// ---------- fp16: exhaustive over every bit pattern ----------

TEST(Fp16PropertyTest, EveryHalfRoundTripsExactly) {
  // HalfToFloat is exact, and FloatToHalf of an exactly-representable
  // value must return the identical bit pattern — for all 65536 halfs
  // except NaNs (payloads may canonicalize).
  for (uint32_t bits = 0; bits <= 0xFFFF; ++bits) {
    const Fp16 h = static_cast<Fp16>(bits);
    const uint32_t exp = (h >> 10) & 0x1F;
    const uint32_t mant = h & 0x3FF;
    if (exp == 0x1F && mant != 0) continue;  // NaN
    const float f = HalfToFloat(h);
    EXPECT_EQ(FloatToHalf(f), h)
        << "bits 0x" << std::hex << bits << " -> " << f;
  }
}

TEST(Fp16PropertyTest, MonotoneOnPositives) {
  // Conversion preserves order for positive halfs.
  float prev = -1.0f;
  for (uint32_t bits = 0; bits < 0x7C00; ++bits) {  // up to +inf
    const float f = HalfToFloat(static_cast<Fp16>(bits));
    EXPECT_GT(f, prev) << bits;
    prev = f;
  }
}

TEST(Fp16PropertyTest, RoundingNeverMovesMoreThanHalfUlp) {
  Rng rng(99);
  for (int i = 0; i < 50000; ++i) {
    const float x =
        static_cast<float>(rng.NextGaussian()) * 100.0f;
    const Fp16 h = FloatToHalf(x);
    const float back = HalfToFloat(h);
    // Neighbouring halfs must not be strictly closer to x.
    const float lo = HalfToFloat(static_cast<Fp16>(h - 1));
    const float hi = HalfToFloat(static_cast<Fp16>(h + 1));
    const float err = std::fabs(back - x);
    if (!std::isinf(lo)) {
      EXPECT_LE(err, std::fabs(lo - x) + 1e-12f) << x;
    }
    if (!std::isinf(hi) && (h & 0x7FFF) != 0) {
      EXPECT_LE(err, std::fabs(hi - x) + 1e-12f) << x;
    }
  }
}

// ---------- DES conservation laws ----------

TEST(SimConservationTest, WorkNeverExceedsCapacityAndMatchesDemand) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    SimEngine eng;
    const int n_res = 2 + static_cast<int>(rng.NextBelow(3));
    std::vector<ResourceId> res;
    std::vector<double> rates;
    for (int r = 0; r < n_res; ++r) {
      rates.push_back(1.0 + rng.NextDouble() * 9.0);
      res.push_back(eng.AddResource("r" + std::to_string(r), rates.back()));
    }
    const int n_tasks = 20 + static_cast<int>(rng.NextBelow(60));
    std::vector<double> demand(n_res, 0.0);
    std::vector<TaskId> tasks;
    for (int i = 0; i < n_tasks; ++i) {
      const int r = static_cast<int>(rng.NextBelow(n_res));
      const double amount = rng.NextDouble() * 5.0;
      std::vector<TaskId> deps;
      if (!tasks.empty() && rng.NextBelow(2) == 0) {
        deps.push_back(tasks[rng.NextBelow(tasks.size())]);
      }
      tasks.push_back(eng.AddTask("t", res[r], amount, deps));
      demand[r] += amount;
    }
    ASSERT_TRUE(eng.Run().ok());
    const double span = eng.Makespan();
    for (int r = 0; r < n_res; ++r) {
      const double busy = eng.ResourceBusyTime(res[r], 0.0, span);
      const double work = eng.ResourceWorkDone(res[r], 0.0, span);
      EXPECT_LE(busy, span + 1e-9);
      // Capacity: work <= rate * busy-time; demand conservation: every
      // byte/FLOP requested was served.
      EXPECT_LE(work, rates[r] * busy + 1e-6);
      EXPECT_NEAR(work, demand[r], 1e-6 * (demand[r] + 1.0));
    }
    // Causality: tasks start after their dependencies finish.
    const auto records = eng.TaskRecords();
    (void)records;
  }
}

TEST(SimConservationTest, DependenciesRespectedInRandomDags) {
  Rng rng(17);
  SimEngine eng;
  const ResourceId r0 = eng.AddResource("a", 2.0);
  const ResourceId r1 = eng.AddResource("b", 3.0);
  std::vector<TaskId> tasks;
  std::vector<std::vector<TaskId>> deps_of;
  for (int i = 0; i < 120; ++i) {
    std::vector<TaskId> deps;
    for (int d = 0; d < 3 && !tasks.empty(); ++d) {
      if (rng.NextBelow(3) == 0) {
        deps.push_back(tasks[rng.NextBelow(tasks.size())]);
      }
    }
    tasks.push_back(eng.AddTask("t", rng.NextBelow(2) ? r0 : r1,
                                rng.NextDouble() * 2.0, deps));
    deps_of.push_back(deps);
  }
  ASSERT_TRUE(eng.Run().ok());
  for (size_t i = 0; i < tasks.size(); ++i) {
    for (TaskId d : deps_of[i]) {
      EXPECT_GE(eng.timing(tasks[i]).start, eng.timing(d).finish - 1e-9);
    }
  }
}

// ---------- Workload invariants across the Table IV grid ----------

class TableIVWorkloadTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TableIVWorkloadTest, StructuralInvariants) {
  const auto [model_idx, batch] = GetParam();
  const TransformerConfig cfg = AllTableIVModels()[model_idx];
  const WorkloadProfile wl = WorkloadProfile::Build(cfg, batch);

  // 8 activation units per block.
  EXPECT_EQ(wl.activation_units().size(),
            static_cast<size_t>(8 * cfg.num_layers));
  // Exactly one inter-block checkpoint per block, 1/16 of block bytes.
  int inter = 0;
  for (const auto& u : wl.activation_units()) inter += u.inter_block;
  EXPECT_EQ(inter, cfg.num_layers);
  EXPECT_EQ(wl.inter_block_activation_bytes() * 16,
            wl.total_activation_bytes());
  // Backward-is-2x-forward bookkeeping (Table I).
  EXPECT_GT(wl.forward_flops(), 0.0);
  // Parameters dominated by blocks; embeddings < 10% for >= 6B models.
  EXPECT_LT(cfg.EmbeddingParameterCount(),
            0.10 * cfg.ParameterCount());
  // Per-block working set is positive and grows with batch.
  EXPECT_GT(wl.PerBlockGpuWorkingSetBytes(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, TableIVWorkloadTest,
    ::testing::Combine(::testing::Range(0, 8), ::testing::Values(1, 16)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
      return AllTableIVModels()[std::get<0>(info.param)].name + "_b" +
             std::to_string(std::get<1>(info.param));
    });

// ---------- Feasibility monotonicity ----------

class FeasibilityMonotoneTest : public ::testing::TestWithParam<int> {};

TEST_P(FeasibilityMonotoneTest, MoreMemoryNeverHurtsRatel) {
  const TransformerConfig cfg = AllTableIVModels()[GetParam()];
  RatelSystem ratel;
  bool was_feasible = false;
  for (int64_t mem : {128, 256, 384, 512, 640, 768, 1024}) {
    const ServerConfig s = catalog::EvaluationServer(
        catalog::Rtx4090(), mem * kGiB, 12);
    const bool feasible = ratel.CanTrain(cfg, 1, s);
    EXPECT_TRUE(feasible || !was_feasible)
        << cfg.name << " became infeasible at " << mem << " GiB";
    was_feasible = feasible || was_feasible;
  }
}

TEST_P(FeasibilityMonotoneTest, MoreBatchNeverHelps) {
  const TransformerConfig cfg = AllTableIVModels()[GetParam()];
  RatelSystem ratel;
  const ServerConfig s = catalog::EvaluationServer(
      catalog::Rtx4090(), 768 * kGiB, 12);
  bool prev = true;
  for (int batch : {1, 4, 16, 64, 256}) {
    const bool feasible = ratel.CanTrain(cfg, batch, s);
    EXPECT_TRUE(!feasible || prev)
        << cfg.name << " regained feasibility at batch " << batch;
    prev = feasible;
  }
}

INSTANTIATE_TEST_SUITE_P(AllModels, FeasibilityMonotoneTest,
                         ::testing::Range(0, 8),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return AllTableIVModels()[info.param].name;
                         });

// ---------- Cost-model sensitivity ----------

TEST(CostModelSensitivityTest, FasterDevicesNeverSlower) {
  auto cfg = LlmFromTableIV("13B");
  ASSERT_TRUE(cfg.ok());
  const WorkloadProfile wl = WorkloadProfile::Build(*cfg, 32);
  const ServerConfig s = catalog::EvaluationServer(
      catalog::Rtx4090(), 256 * kGiB, 12);
  auto base = HardwareProfiler(s).Profile(wl);
  ASSERT_TRUE(base.ok());
  const double a = 30e9;
  const double t0 = CostModel(*base, wl).IterTimeAt(a);
  for (double* field : {&base->thp_g, &base->bw_g, &base->bw_s2m,
                        &base->bw_m2s}) {
    HardwareProfile hw = *base;
    const ptrdiff_t offset =
        reinterpret_cast<const char*>(field) -
        reinterpret_cast<const char*>(&(*base));
    double* target =
        reinterpret_cast<double*>(reinterpret_cast<char*>(&hw) + offset);
    *target *= 2.0;
    const double t = CostModel(hw, wl).IterTimeAt(a);
    EXPECT_LE(t, t0 + 1e-9);
  }
}

TEST(CostModelSensitivityTest, MoreSpareMemoryNeverSlower) {
  auto cfg = LlmFromTableIV("13B");
  ASSERT_TRUE(cfg.ok());
  const WorkloadProfile wl = WorkloadProfile::Build(*cfg, 48);
  const ServerConfig s = catalog::EvaluationServer(
      catalog::Rtx4090(), 256 * kGiB, 3);
  auto hw = HardwareProfiler(s).Profile(wl);
  ASSERT_TRUE(hw.ok());
  double prev = 1e300;
  for (int64_t extra = 0; extra <= 200; extra += 50) {
    HardwareProfile h2 = *hw;
    h2.mem_avail_m = hw->mem_avail_m + extra * kGiB;
    const CostModel cm(h2, wl);
    const double t = ActivationPlanner(cm).Plan().predicted_iter_time;
    EXPECT_LE(t, prev + 1e-9) << extra;
    prev = t;
  }
}

}  // namespace
}  // namespace ratel
