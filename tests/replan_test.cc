// Online re-planning battery (ctest label: replan).
//
// Pins the plan->run->observe loop at three levels:
//  - FlowObserver: windows are exact snapshot deltas of the cumulative
//    TransferStats, so dropped-base + ring always reconciles against
//    the counters — no drift, no double-count, even with concurrent
//    engine traffic racing the window boundaries.
//  - Replanner: the deviation trigger (observed-baseline-relative),
//    hysteresis, cooldown, multiplicative calibration, and the
//    drift-free-means-zero-resolves guarantee.
//  - RatelTrainer hot-swap safety: a replan firing mid-run (stripes
//    killed under the async optimizer's pending deferred epochs and the
//    prefetcher's in-flight gated reads) leaves the loss trajectory
//    bitwise identical to an undisturbed run, and a partial spill set
//    is loss-equivalent to the classic spill-everything path.

#include "core/replanner.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "autograd/transformer.h"
#include "common/units.h"
#include "core/activation_planner.h"
#include "hw/catalog.h"
#include "model/transformer_config.h"
#include "model/workload.h"
#include "runtime/dataset.h"
#include "runtime/ratel_trainer.h"
#include "storage/fault_injector.h"
#include "xfer/flow_window.h"
#include "xfer/transfer_engine.h"

namespace ratel {
namespace {

std::string TempDir(const std::string& tag) {
  return ::testing::TempDir() + "/ratel_replan_" + tag + "_" +
         std::to_string(::getpid());
}

// ---------- FlowObserver: windows reconcile against the counters ----------

FlowCounters& Mut(TransferStats* s, FlowClass flow) {
  return s->flow[static_cast<int>(flow)];
}

void ExpectWindowMatchesDelta(const FlowWindow& w, const FlowCounters& later,
                              const FlowCounters& earlier,
                              const std::string& where) {
  SCOPED_TRACE(where);
  EXPECT_EQ(w.reads, later.reads - earlier.reads);
  EXPECT_EQ(w.writes, later.writes - earlier.writes);
  EXPECT_EQ(w.bytes_read, later.bytes_read - earlier.bytes_read);
  EXPECT_EQ(w.bytes_written, later.bytes_written - earlier.bytes_written);
  EXPECT_EQ(w.bytes_from_cache,
            later.bytes_from_cache - earlier.bytes_from_cache);
  EXPECT_EQ(w.encoded_bytes_read,
            later.encoded_bytes_read - earlier.encoded_bytes_read);
  EXPECT_EQ(w.encoded_bytes_written,
            later.encoded_bytes_written - earlier.encoded_bytes_written);
  EXPECT_EQ(w.errors, later.errors - earlier.errors);
  EXPECT_EQ(w.retries, later.retries - earlier.retries);
  EXPECT_NEAR(w.read_seconds, later.read_seconds - earlier.read_seconds, 1e-9);
  EXPECT_NEAR(w.write_seconds, later.write_seconds - earlier.write_seconds,
              1e-9);
}

/// The reconciliation contract: dropped_base + sum(ring) == latest -
/// epoch, per flow, per counter. Seconds are doubles, so they get a
/// tolerance; every integer counter must match exactly.
void ExpectReconciles(const FlowObserver& obs) {
  const TransferStats epoch = obs.epoch();
  const TransferStats latest = obs.latest();
  for (int f = 0; f < kNumFlowClasses; ++f) {
    const FlowClass flow = static_cast<FlowClass>(f);
    FlowWindow total = obs.DroppedBase(flow);
    for (const FlowWindow& w : obs.History(flow)) total.Accumulate(w);
    ExpectWindowMatchesDelta(total, latest.flow[f], epoch.flow[f],
                             std::string("flow ") + FlowClassName(flow));
  }
}

TEST(FlowObserverTest, WindowIsTheExactSnapshotDelta) {
  FlowObserver obs(8, 0.5);
  TransferStats s;
  obs.Start(s, 0.0);

  FlowCounters before = Mut(&s, FlowClass::kActivationSpill);
  auto& c = Mut(&s, FlowClass::kActivationSpill);
  c.writes += 3;
  c.bytes_written += 3000;
  c.encoded_bytes_written += 1500;  // 2x codec
  c.write_seconds += 0.25;
  c.reads += 2;
  c.bytes_read += 2000;
  c.bytes_from_cache += 1000;
  c.encoded_bytes_read += 500;
  c.read_seconds += 0.1;
  c.errors += 1;
  c.retries += 2;
  EXPECT_EQ(obs.Advance(s, 1.0), 1);

  const FlowWindow w = obs.Last(FlowClass::kActivationSpill);
  ExpectWindowMatchesDelta(w, c, before, "spill window 1");
  EXPECT_DOUBLE_EQ(w.start_seconds, 0.0);
  EXPECT_DOUBLE_EQ(w.end_seconds, 1.0);
  EXPECT_DOUBLE_EQ(w.WallSeconds(), 1.0);
  // Service bandwidth is the *encoded* (store-leg) rate.
  EXPECT_DOUBLE_EQ(w.WriteServiceBandwidth(), 1500 / 0.25);
  EXPECT_DOUBLE_EQ(w.ReadServiceBandwidth(), 500 / 0.1);
  // Untouched flows closed an all-zero window.
  const FlowWindow idle = obs.Last(FlowClass::kCheckpoint);
  EXPECT_EQ(idle.writes, 0);
  EXPECT_DOUBLE_EQ(idle.WriteServiceBandwidth(), 0.0);
}

TEST(FlowObserverTest, EvictionFoldsIntoDroppedBaseWithoutDrift) {
  constexpr int kCapacity = 3;
  FlowObserver obs(kCapacity, 0.5);
  TransferStats s;
  obs.Start(s, 0.0);
  for (int i = 1; i <= 10; ++i) {
    auto& c = Mut(&s, FlowClass::kGradState);
    c.writes += 1;
    c.bytes_written += i;  // distinct per window: folding errors would show
    c.encoded_bytes_written += i;
    c.write_seconds += 0.01;
    obs.Advance(s, 0.1 * i);
  }
  EXPECT_EQ(obs.windows(), 10);
  const auto history = obs.History(FlowClass::kGradState);
  ASSERT_EQ(static_cast<int>(history.size()), kCapacity);
  // Ring keeps the newest 3 windows (8, 9, 10)...
  EXPECT_EQ(history.front().bytes_written, 8);
  EXPECT_EQ(history.back().bytes_written, 10);
  // ...and the evicted 1..7 folded into the base: sum 28.
  EXPECT_EQ(obs.DroppedBase(FlowClass::kGradState).bytes_written, 28);
  ExpectReconciles(obs);
}

TEST(FlowObserverTest, EwmaTracksServiceBandwidthPerSide) {
  FlowObserver obs(8, 0.5);
  TransferStats s;
  obs.Start(s, 0.0);

  auto write_window = [&](int64_t bytes, double seconds, double at) {
    auto& c = Mut(&s, FlowClass::kActivationSpill);
    c.writes += 1;
    c.bytes_written += bytes;
    c.encoded_bytes_written += bytes;
    c.write_seconds += seconds;
    obs.Advance(s, at);
  };
  write_window(1000, 0.01, 1.0);  // 100 kB/s
  FlowObserver::Ewma e = obs.ewma(FlowClass::kActivationSpill);
  EXPECT_TRUE(e.write_valid);
  EXPECT_FALSE(e.read_valid);  // no read traffic yet: side stays invalid
  EXPECT_DOUBLE_EQ(e.write_bandwidth, 100e3);

  write_window(500, 0.01, 2.0);  // 50 kB/s -> ewma (alpha .5) = 75 kB/s
  e = obs.ewma(FlowClass::kActivationSpill);
  EXPECT_DOUBLE_EQ(e.write_bandwidth, 75e3);

  // An idle window (no write_seconds) must not decay the estimate.
  obs.Advance(s, 3.0);
  e = obs.ewma(FlowClass::kActivationSpill);
  EXPECT_DOUBLE_EQ(e.write_bandwidth, 75e3);
}

TEST(FlowObserverTest, AdvanceBeforeStartOpensTheEpoch) {
  FlowObserver obs(4, 0.5);
  TransferStats s;
  Mut(&s, FlowClass::kParamFetch).bytes_read = 777;
  EXPECT_EQ(obs.Advance(s, 1.0), 0);  // first call: epoch, no window
  EXPECT_EQ(obs.windows(), 0);
  EXPECT_EQ(obs.epoch().flow[0].bytes_read, 777);
  Mut(&s, FlowClass::kParamFetch).bytes_read = 1000;
  EXPECT_EQ(obs.Advance(s, 2.0), 1);
  EXPECT_EQ(obs.Last(FlowClass::kParamFetch).bytes_read, 223);
}

TEST(FlowObserverTest, ReconciliationHoldsUnderConcurrentEngineTraffic) {
  // Three threads hammer distinct flows through a live engine while the
  // observer closes windows at arbitrary moments in between — exactly
  // the trainer's step-boundary pattern racing the I/O workers. After
  // the dust settles, every flow's dropped-base + ring must equal the
  // cumulative counter delta: no lost bytes, no double counting.
  TransferOptions opts;
  opts.dir = TempDir("obs_conc");
  opts.num_stripes = 4;
  opts.chunk_bytes = 4096;
  opts.io_workers = 4;
  auto engine = TransferEngine::Open(opts);
  ASSERT_TRUE(engine.ok());

  FlowObserver obs(/*capacity=*/4, /*ewma_alpha=*/0.5);  // force eviction
  obs.Start((*engine)->stats(), 0.0);

  const FlowClass flows[] = {FlowClass::kParamFetch, FlowClass::kGradState,
                             FlowClass::kCheckpoint};
  std::vector<std::thread> workers;
  for (int t = 0; t < 3; ++t) {
    workers.emplace_back([&, t] {
      const FlowClass flow = flows[t];
      std::vector<uint8_t> buf(2048, static_cast<uint8_t>(t));
      std::vector<uint8_t> out(buf.size());
      for (int i = 0; i < 40; ++i) {
        const std::string key =
            "t" + std::to_string(t) + "/k" + std::to_string(i % 8);
        ASSERT_TRUE(
            (*engine)->Write(flow, key, buf.data(), buf.size()).ok());
        ASSERT_TRUE(
            (*engine)->Read(flow, key, out.data(), out.size()).ok());
      }
    });
  }
  for (int k = 1; k <= 25; ++k) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    obs.Advance((*engine)->stats(), 0.001 * k);
  }
  for (auto& w : workers) w.join();
  obs.Advance((*engine)->stats(), 1.0);  // final boundary after quiesce

  EXPECT_GE(obs.windows(), 26);
  ExpectReconciles(obs);
  // The traffic really ran and really evicted windows.
  const TransferStats latest = obs.latest();
  for (const FlowClass flow : flows) {
    EXPECT_EQ(latest.Flow(flow).writes - obs.epoch().Flow(flow).writes, 40);
    EXPECT_LE(static_cast<int>(obs.History(flow).size()), 4);
  }
}

// ---------- Replanner: trigger, hysteresis, cooldown, calibration ----------

WorkloadProfile FixtureWorkload() {
  auto cfg = LlmFromTableIV("13B");
  EXPECT_TRUE(cfg.ok());
  return WorkloadProfile::Build(*cfg, 32);
}

HardwareProfile FixtureProfile(const WorkloadProfile& workload) {
  const ServerConfig server =
      catalog::EvaluationServer(catalog::Rtx4090(), 256 * kGiB, 12);
  auto hw = HardwareProfiler(server).Profile(workload);
  EXPECT_TRUE(hw.ok());
  return *hw;
}

struct PlannerFixture {
  WorkloadProfile workload = FixtureWorkload();
  HardwareProfile profile = FixtureProfile(workload);
};

/// Drives a Replanner with synthetic cumulative stats whose write-side
/// service bandwidth is exactly what each window dictates.
class SyntheticFeed {
 public:
  explicit SyntheticFeed(Replanner* rp) : rp_(rp) {
    rp_->Observe(stats_, t_);  // opens the observation epoch
  }

  std::optional<ReplanResult> WriteWindow(double bandwidth,
                                          int64_t bytes = 1 << 20) {
    auto& c = stats_.flow[static_cast<int>(FlowClass::kActivationSpill)];
    c.writes += 4;
    c.bytes_written += bytes;
    c.encoded_bytes_written += bytes;
    c.write_seconds += static_cast<double>(bytes) / bandwidth;
    t_ += 0.1;
    return rp_->Observe(stats_, t_);
  }

 private:
  Replanner* rp_;
  TransferStats stats_;
  double t_ = 0.0;
};

TEST(ReplannerTest, InitialPlanIsSolvedAtConstruction) {
  PlannerFixture fx;
  ReplanConfig cfg;
  cfg.enabled = true;
  Replanner rp(cfg, fx.profile, fx.workload);
  EXPECT_GT(rp.current_plan().a_g2m, 0);
  EXPECT_FALSE(rp.current_plan().swapped_units.empty());
  EXPECT_EQ(rp.observation().resolves, 0);  // the initial solve is free
  EXPECT_DOUBLE_EQ(rp.current_profile().bw_m2s, fx.profile.bw_m2s);
}

TEST(ReplannerTest, DriftFreeRunPerformsZeroResolves) {
  // The acceptance criterion in miniature: constant observed bandwidth
  // means the plan is never stale, so the loop never re-solves — by
  // construction, because drift is measured against the loop's own
  // locked baseline, not against nameplate numbers.
  PlannerFixture fx;
  ReplanConfig cfg;
  cfg.enabled = true;  // defaults: threshold .15, hyst 2, cooldown 3
  Replanner rp(cfg, fx.profile, fx.workload);
  SyntheticFeed feed(&rp);
  for (int i = 0; i < 30; ++i) {
    EXPECT_FALSE(feed.WriteWindow(1e9).has_value()) << "window " << i;
  }
  const ReplanObservation obs = rp.observation();
  EXPECT_EQ(obs.windows, 30);
  EXPECT_EQ(obs.resolves, 0);
  EXPECT_EQ(obs.deviating_windows, 0);
  EXPECT_TRUE(obs.baseline_locked);
  EXPECT_LT(obs.staleness, 0.01);
  EXPECT_NEAR(obs.observed_write_bandwidth, 1e9, 1e9 * 1e-6);
  EXPECT_DOUBLE_EQ(obs.observed_read_bandwidth, 0.0);  // side never seen
}

TEST(ReplannerTest, SustainedDriftCalibratesOnceAndReanchors) {
  PlannerFixture fx;
  ReplanConfig cfg;
  cfg.enabled = true;
  cfg.deviation_threshold = 0.15;
  cfg.hysteresis_windows = 2;
  cfg.cooldown_windows = 3;
  cfg.ewma_alpha = 0.5;
  Replanner rp(cfg, fx.profile, fx.workload);
  SyntheticFeed feed(&rp);

  // Warmup at 1 GB/s: baseline locks at window 3 (= cooldown).
  for (int i = 0; i < 3; ++i) ASSERT_FALSE(feed.WriteWindow(1e9).has_value());
  ASSERT_TRUE(rp.observation().baseline_locked);

  // Bandwidth halves. EWMA walk: .75 -> .625 -> .5625 of baseline, so
  // deviation crosses 15% at window 4 (streak 1), window 5 makes the
  // hysteresis (streak 2) but is still inside the cooldown (5-3 < 3);
  // window 6 fires.
  ASSERT_FALSE(feed.WriteWindow(5e8).has_value());  // window 4
  ASSERT_FALSE(feed.WriteWindow(5e8).has_value());  // window 5 (cooldown)
  auto result = feed.WriteWindow(5e8);              // window 6
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->solve_index, 1);
  EXPECT_NEAR(result->deviation, 0.4375, 1e-3);
  // Multiplicative calibration of the drifted side only.
  EXPECT_NEAR(result->calibrated.bw_m2s, fx.profile.bw_m2s * 0.5625,
              fx.profile.bw_m2s * 1e-3);
  EXPECT_DOUBLE_EQ(result->calibrated.bw_s2m, fx.profile.bw_s2m);
  EXPECT_EQ(result->calibrated.calibration_windows, 6);
  EXPECT_NEAR(result->calibrated.observed_activation_compression, 1.0, 1e-9);

  // The baseline re-anchored at the solve: the *same* degraded world is
  // no longer drift, so the loop settles — no thrash.
  for (int i = 0; i < 14; ++i) {
    EXPECT_FALSE(feed.WriteWindow(5e8).has_value()) << "post-solve " << i;
  }
  EXPECT_EQ(rp.observation().resolves, 1);
  EXPECT_NEAR(rp.current_profile().bw_m2s, fx.profile.bw_m2s * 0.5625,
              fx.profile.bw_m2s * 1e-3);
}

TEST(ReplannerTest, HysteresisFiltersASingleNoisyWindow) {
  PlannerFixture fx;
  ReplanConfig cfg;
  cfg.enabled = true;
  cfg.deviation_threshold = 0.2;
  cfg.hysteresis_windows = 2;
  cfg.cooldown_windows = 2;
  cfg.ewma_alpha = 1.0;  // no smoothing: the noise hits at full strength
  Replanner rp(cfg, fx.profile, fx.workload);
  SyntheticFeed feed(&rp);

  for (int i = 0; i < 2; ++i) ASSERT_FALSE(feed.WriteWindow(1e9).has_value());
  // One 60%-off window: streak 1 < hysteresis 2 — no solve...
  ASSERT_FALSE(feed.WriteWindow(4e8).has_value());
  // ...and recovery resets the streak, so it never fires.
  for (int i = 0; i < 8; ++i) ASSERT_FALSE(feed.WriteWindow(1e9).has_value());
  const ReplanObservation obs = rp.observation();
  EXPECT_EQ(obs.resolves, 0);
  EXPECT_EQ(obs.deviating_windows, 1);
}

TEST(ReplannerTest, CooldownSpacesBackToBackResolves) {
  PlannerFixture fx;
  ReplanConfig cfg;
  cfg.enabled = true;
  cfg.deviation_threshold = 0.2;
  cfg.hysteresis_windows = 1;
  cfg.cooldown_windows = 4;
  cfg.ewma_alpha = 1.0;
  Replanner rp(cfg, fx.profile, fx.workload);
  SyntheticFeed feed(&rp);

  for (int i = 0; i < 4; ++i) ASSERT_FALSE(feed.WriteWindow(1e9).has_value());

  // Persistent 2x degradation from window 5: armed immediately
  // (hysteresis 1) but held until the cooldown elapses at window 8.
  std::vector<int64_t> fired_at;
  for (int w = 5; w <= 8; ++w) {
    auto r = feed.WriteWindow(5e8);
    if (r.has_value()) fired_at.push_back(r->calibrated.calibration_windows);
  }
  ASSERT_EQ(fired_at, (std::vector<int64_t>{8}));

  // A second degradation composes: the next solve waits out its own
  // cooldown and scales the already-calibrated profile again.
  for (int w = 9; w <= 12; ++w) {
    auto r = feed.WriteWindow(2.5e8);
    if (r.has_value()) {
      fired_at.push_back(r->calibrated.calibration_windows);
      EXPECT_EQ(r->solve_index, 2);
      EXPECT_NEAR(r->calibrated.bw_m2s, fx.profile.bw_m2s * 0.25,
                  fx.profile.bw_m2s * 1e-3);
    }
  }
  EXPECT_EQ(fired_at, (std::vector<int64_t>{8, 12}));
  EXPECT_EQ(rp.observation().resolves, 2);
}

TEST(ReplanConfigTest, EnvKnobsOverlayOntoBase) {
  ::setenv("RATEL_REPLAN", "1", 1);
  ::setenv("RATEL_REPLAN_THRESHOLD_PCT", "35", 1);
  ::setenv("RATEL_REPLAN_HYSTERESIS", "4", 1);
  ::setenv("RATEL_REPLAN_COOLDOWN", "7", 1);
  ::setenv("RATEL_REPLAN_EWMA_ALPHA", "0.25", 1);
  ::setenv("RATEL_REPLAN_WINDOWS", "8", 1);
  const ReplanConfig cfg = ReplanConfig::FromEnv(ReplanConfig{});
  ::unsetenv("RATEL_REPLAN");
  ::unsetenv("RATEL_REPLAN_THRESHOLD_PCT");
  ::unsetenv("RATEL_REPLAN_HYSTERESIS");
  ::unsetenv("RATEL_REPLAN_COOLDOWN");
  ::unsetenv("RATEL_REPLAN_EWMA_ALPHA");
  ::unsetenv("RATEL_REPLAN_WINDOWS");

  EXPECT_TRUE(cfg.enabled);
  EXPECT_DOUBLE_EQ(cfg.deviation_threshold, 0.35);
  EXPECT_EQ(cfg.hysteresis_windows, 4);
  EXPECT_EQ(cfg.cooldown_windows, 7);
  EXPECT_DOUBLE_EQ(cfg.ewma_alpha, 0.25);
  EXPECT_EQ(cfg.window_capacity, 8);

  // RATEL_REPLAN=0 force-disables a programmatically armed config.
  ::setenv("RATEL_REPLAN", "0", 1);
  ReplanConfig armed;
  armed.enabled = true;
  EXPECT_FALSE(ReplanConfig::FromEnv(armed).enabled);
  ::unsetenv("RATEL_REPLAN");
}

// ---------- Stripe death degrades the array's channels ----------

TEST(FaultInjectorTest, KillStripeFailsWritesRegardlessOfFlowMask) {
  FaultConfig cfg;           // no scheduled faults at all
  cfg.flow_mask = 0;         // and every flow class scoped *out*
  FaultInjector injector(cfg);
  EXPECT_FALSE(injector.FailsStripeWrite(2));
  injector.KillStripe(2);
  // Wear-out is a device-level fact: the flow scope must not save the
  // write, and the failure repeats forever (no periodic schedule).
  FaultInjector::ScopedFlow scope(
      static_cast<int>(FlowClass::kActivationSpill));
  EXPECT_TRUE(injector.FailsStripeWrite(2));
  EXPECT_TRUE(injector.FailsStripeWrite(2));
  EXPECT_FALSE(injector.FailsStripeWrite(0));
  EXPECT_EQ(injector.counts().stripe_write_failures, 2);
}

TEST(TransferEngineTest, StripeDeathRescalesThrottledChannels) {
  // RAID-0 physics: losing 1 of 4 devices loses a quarter of the
  // array's lanes, so both throttled channels re-rate to 0.75x once the
  // store declares the stripe dead.
  const double kBw = 8.0 * (1 << 20);
  FaultInjector injector{FaultConfig{}};
  TransferOptions opts;
  opts.dir = TempDir("degrade");
  opts.num_stripes = 4;
  opts.chunk_bytes = 4096;
  opts.read_bandwidth = kBw;
  opts.write_bandwidth = kBw;
  opts.fault_injector = &injector;
  opts.stripe_death_threshold = 1;
  auto engine = TransferEngine::Open(opts);
  ASSERT_TRUE(engine.ok());
  EXPECT_DOUBLE_EQ((*engine)->current_read_bandwidth(), kBw);
  EXPECT_DOUBLE_EQ((*engine)->current_write_bandwidth(), kBw);

  std::vector<uint8_t> blob(64 * 1024, 0xA5);  // 16 chunks: all stripes
  ASSERT_TRUE((*engine)
                  ->Write(FlowClass::kCheckpoint, "pre", blob.data(),
                          blob.size())
                  .ok());
  injector.KillStripe(0);
  // The write that trips the wear-out fault is retried around the dead
  // stripe, so the data path stays correct while the channels degrade.
  ASSERT_TRUE((*engine)
                  ->Write(FlowClass::kCheckpoint, "post", blob.data(),
                          blob.size())
                  .ok());
  std::vector<uint8_t> out(blob.size());
  ASSERT_TRUE(
      (*engine)->Read(FlowClass::kCheckpoint, "post", out.data(), out.size())
          .ok());
  EXPECT_EQ(out, blob);
  EXPECT_GE(injector.counts().stripe_write_failures, 1);
  EXPECT_DOUBLE_EQ((*engine)->current_read_bandwidth(), kBw * 0.75);
  EXPECT_DOUBLE_EQ((*engine)->current_write_bandwidth(), kBw * 0.75);
}

TEST(TransferEngineTest, DegradeKnobOffKeepsNameplateBandwidth) {
  const double kBw = 8.0 * (1 << 20);
  FaultInjector injector{FaultConfig{}};
  TransferOptions opts;
  opts.dir = TempDir("no_degrade");
  opts.num_stripes = 4;
  opts.chunk_bytes = 4096;
  opts.read_bandwidth = kBw;
  opts.write_bandwidth = kBw;
  opts.fault_injector = &injector;
  opts.stripe_death_threshold = 1;
  opts.degrade_bandwidth_on_stripe_death = false;
  auto engine = TransferEngine::Open(opts);
  ASSERT_TRUE(engine.ok());
  injector.KillStripe(1);
  std::vector<uint8_t> blob(64 * 1024, 0x3C);
  ASSERT_TRUE(
      (*engine)->Write(FlowClass::kCheckpoint, "b", blob.data(), blob.size())
          .ok());
  EXPECT_DOUBLE_EQ((*engine)->current_read_bandwidth(), kBw);
  EXPECT_DOUBLE_EQ((*engine)->current_write_bandwidth(), kBw);
}

// ---------- Trainer hot-swap safety ----------

ag::TinyGptConfig TinyConfig() {
  ag::TinyGptConfig cfg;
  cfg.vocab_size = 32;
  cfg.seq_len = 8;
  cfg.hidden_dim = 16;
  cfg.num_heads = 2;
  cfg.num_layers = 2;
  return cfg;
}

std::vector<TokenBatch> CollectBatches(int steps, int batch) {
  SyntheticDataset ds(SyntheticTask::kAffineMap, 32, 8, 12);
  std::vector<TokenBatch> batches;
  for (int i = 0; i < steps; ++i) batches.push_back(ds.NextBatch(batch));
  return batches;
}

std::vector<float> RunTrainer(RatelTrainer* trainer,
                              const std::vector<TokenBatch>& batches,
                              int batch) {
  std::vector<float> losses;
  for (const TokenBatch& b : batches) {
    auto loss = trainer->TrainStep(b.ids, b.targets, batch);
    EXPECT_TRUE(loss.ok()) << loss.status().message();
    EXPECT_TRUE(std::isfinite(*loss));
    losses.push_back(*loss);
  }
  return losses;
}

TEST(ReplanTrainerTest, ArmedButQuietLoopIsBitwiseIdenticalToDisabled) {
  // The armed-but-never-firing loop must be a pure observer: with the
  // trigger out of reach, every per-step loss matches the disabled
  // trainer bit for bit even though the replanner's initial plan (and
  // possibly a partial spill set) is installed and live.
  const int kSteps = 6, kBatch = 2;
  const auto batches = CollectBatches(kSteps, kBatch);

  ag::TinyGpt model_a(TinyConfig(), 71);
  TrainerOptions opts_a;
  opts_a.store_dir = TempDir("quiet_a");
  opts_a.spill_activations = true;
  auto trainer_a = RatelTrainer::Create(&model_a, opts_a);
  ASSERT_TRUE(trainer_a.ok());
  const auto losses_a = RunTrainer(trainer_a->get(), batches, kBatch);

  ag::TinyGpt model_b(TinyConfig(), 71);
  TrainerOptions opts_b = opts_a;
  opts_b.store_dir = TempDir("quiet_b");
  opts_b.replan.enabled = true;
  opts_b.replan.deviation_threshold = 1e9;  // unreachable: never fires
  auto trainer_b = RatelTrainer::Create(&model_b, opts_b);
  ASSERT_TRUE(trainer_b.ok());
  const auto losses_b = RunTrainer(trainer_b->get(), batches, kBatch);

  ASSERT_EQ(losses_a.size(), losses_b.size());
  for (size_t i = 0; i < losses_a.size(); ++i) {
    EXPECT_EQ(losses_a[i], losses_b[i]) << "step " << i << " diverged";
  }
  ASSERT_NE((*trainer_b)->replanner(), nullptr);
  EXPECT_EQ((*trainer_a)->replanner(), nullptr);
  const StepStats& stats = (*trainer_b)->last_step_stats();
  EXPECT_EQ(stats.replans, 0);
  EXPECT_EQ((*trainer_b)->active_schedule().version, 0);
  EXPECT_GT((*trainer_b)->replanner()->observation().windows, 0);
}

TEST(ReplanTrainerTest, MidRunStripeDeathReplansAndStaysLossEquivalent) {
  // The full loop under fire: stripes wear out mid-run while the async
  // optimizer holds pending deferred epochs across the step boundary
  // and the prefetcher issues gated reads. The replanner must observe
  // the bandwidth collapse, re-solve, and hot-swap the schedule — and
  // the loss trajectory must stay bitwise identical to an undisturbed
  // unthrottled run, because every swapped quantity (spill set,
  // prefetch depth, recompute choices) is numerics-neutral.
  const int kSteps = 10, kBatch = 2;
  const auto batches = CollectBatches(kSteps, kBatch);

  TrainerOptions common;
  common.spill_activations = true;
  common.async_optimizer = true;
  common.async_partition_chunk = 64;  // multi-chunk: a real deferred tail
  common.async_background_threads = 2;

  ag::TinyGpt model_a(TinyConfig(), 72);
  TrainerOptions opts_a = common;
  opts_a.store_dir = TempDir("fire_a");
  auto trainer_a = RatelTrainer::Create(&model_a, opts_a);
  ASSERT_TRUE(trainer_a.ok());
  const auto losses_a = RunTrainer(trainer_a->get(), batches, kBatch);

  ag::TinyGpt model_b(TinyConfig(), 72);
  FaultInjector injector{FaultConfig{}};
  TrainerOptions opts_b = common;
  opts_b.store_dir = TempDir("fire_b");
  // Throttle slow enough that the deterministic bandwidth sleeps
  // dominate service latency even under sanitizer + parallel-ctest
  // load — otherwise scheduler jitter can out-shout the physical
  // bandwidth halving and calibrate the profile the wrong way.
  const double kBw = 8.0 * (1 << 20);
  opts_b.ssd_read_bandwidth = kBw;
  opts_b.ssd_write_bandwidth = kBw;
  opts_b.stripe_chunk_bytes = 4096;  // stripe every blob across devices
  opts_b.stripe_death_threshold = 1;
  opts_b.fault_injector = &injector;
  opts_b.replan.enabled = true;
  opts_b.replan.deviation_threshold = 0.2;
  // Smoothed + hysteretic: a single noisy window must not re-anchor
  // the baseline before the sustained wear-out signal arrives.
  opts_b.replan.hysteresis_windows = 2;
  opts_b.replan.cooldown_windows = 2;
  opts_b.replan.ewma_alpha = 0.5;
  auto trainer_b = RatelTrainer::Create(&model_b, opts_b);
  ASSERT_TRUE(trainer_b.ok());

  std::vector<float> losses_b;
  int64_t deferred = 0;
  for (int i = 0; i < kSteps; ++i) {
    auto loss =
        (*trainer_b)->TrainStep(batches[i].ids, batches[i].targets, kBatch);
    ASSERT_TRUE(loss.ok()) << "step " << i << ": " << loss.status().message();
    losses_b.push_back(*loss);
    deferred += (*trainer_b)->last_step_stats().deferred_epochs;
    if (i == 2) {
      // Two of four devices wear out between steps: array bandwidth
      // halves once the store declares them dead.
      injector.KillStripe(0);
      injector.KillStripe(1);
    }
  }

  ASSERT_EQ(losses_a.size(), losses_b.size());
  for (size_t i = 0; i < losses_a.size(); ++i) {
    EXPECT_EQ(losses_a[i], losses_b[i]) << "step " << i << " diverged";
  }
  EXPECT_GT(deferred, 0) << "async tail never deferred: hot-swap untested";
  // The wear-out really degraded the array and the loop really fired.
  EXPECT_GE(injector.counts().stripe_write_failures, 1);
  EXPECT_LT((*trainer_b)->engine().current_write_bandwidth(), kBw);
  const StepStats& stats = (*trainer_b)->last_step_stats();
  EXPECT_GE(stats.replans, 1) << "bandwidth collapse never triggered a solve";
  ASSERT_NE((*trainer_b)->replanner(), nullptr);
  EXPECT_GE((*trainer_b)->replanner()->observation().resolves, 1);
  EXPECT_GE((*trainer_b)->active_schedule().version, 1);
  // The re-solve calibrated the SSD terms downward from nameplate.
  const HardwareProfile calibrated =
      (*trainer_b)->replanner()->current_profile();
  EXPECT_LT(calibrated.bw_m2s, kBw);
}

TEST(ReplanTrainerTest, PartialSpillSetIsLossEquivalentToSpillEverything) {
  // With the SSD nameplate rates tiny, Algorithm 1 swaps only the
  // inter-block minimum — the installed schedule carries a *partial*
  // spill set. The partial path must move strictly fewer activation
  // bytes while leaving the loss trajectory bitwise identical to the
  // classic spill-everything trainer (the spill round-trip is raw).
  const int kSteps = 3, kBatch = 2;
  const auto batches = CollectBatches(kSteps, kBatch);
  const double kBw = 8.0 * (1 << 20);

  ag::TinyGpt model_a(TinyConfig(), 73);
  TrainerOptions opts_a;
  opts_a.store_dir = TempDir("partial_a");
  opts_a.spill_activations = true;
  opts_a.ssd_read_bandwidth = kBw;
  opts_a.ssd_write_bandwidth = kBw;
  auto trainer_a = RatelTrainer::Create(&model_a, opts_a);
  ASSERT_TRUE(trainer_a.ok());
  const auto losses_a = RunTrainer(trainer_a->get(), batches, kBatch);
  const int64_t spilled_a = (*trainer_a)
                                ->transfer_stats()
                                .Flow(FlowClass::kActivationSpill)
                                .bytes_written;

  ag::TinyGpt model_b(TinyConfig(), 73);
  TrainerOptions opts_b = opts_a;
  opts_b.store_dir = TempDir("partial_b");
  opts_b.replan.enabled = true;
  opts_b.replan.deviation_threshold = 1e9;  // initial plan only, no solves
  auto trainer_b = RatelTrainer::Create(&model_b, opts_b);
  ASSERT_TRUE(trainer_b.ok());
  const auto losses_b = RunTrainer(trainer_b->get(), batches, kBatch);

  const RatelTrainer::ActiveSchedule& sched = (*trainer_b)->active_schedule();
  ASSERT_GT(sched.spill_fraction, 0.0);
  ASSERT_LT(sched.spill_fraction, 1.0)
      << "planner unexpectedly chose spill-everything; the partial path "
         "went unexercised";
  const int64_t spilled_b = (*trainer_b)
                                ->transfer_stats()
                                .Flow(FlowClass::kActivationSpill)
                                .bytes_written;
  EXPECT_GT(spilled_b, 0);
  EXPECT_LT(spilled_b, spilled_a);

  ASSERT_EQ(losses_a.size(), losses_b.size());
  for (size_t i = 0; i < losses_a.size(); ++i) {
    EXPECT_EQ(losses_a[i], losses_b[i]) << "step " << i << " diverged";
  }
}

TEST(ReplanTrainerTest, EnvKnobsArmTheLoopOnAnUnmodifiedTrainer) {
  ::setenv("RATEL_REPLAN", "1", 1);
  ::setenv("RATEL_REPLAN_THRESHOLD_PCT", "1000000", 1);  // observer-only
  ag::TinyGpt model(TinyConfig(), 74);
  TrainerOptions opts;  // replan left at its disabled default
  opts.store_dir = TempDir("env_arm");
  opts.spill_activations = true;
  auto trainer = RatelTrainer::Create(&model, opts);
  ::unsetenv("RATEL_REPLAN");
  ::unsetenv("RATEL_REPLAN_THRESHOLD_PCT");
  ASSERT_TRUE(trainer.ok());

  SyntheticDataset ds(SyntheticTask::kAffineMap, 32, 8, 12);
  const TokenBatch b = ds.NextBatch(2);
  auto loss = (*trainer)->TrainStep(b.ids, b.targets, 2);
  ASSERT_TRUE(loss.ok());
  ASSERT_NE((*trainer)->replanner(), nullptr);
  EXPECT_DOUBLE_EQ((*trainer)->replanner()->config().deviation_threshold,
                   10000.0);
  EXPECT_GE((*trainer)->last_step_stats().plan_staleness_pct, 0.0);
}

}  // namespace
}  // namespace ratel
