#include "common/buffer.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "mem/memory_pool.h"
#include "mem/tier_cache.h"
#include "storage/block_store.h"

namespace ratel {
namespace {

std::string TempDir(const std::string& tag) {
  return ::testing::TempDir() + "/ratel_buffer_" + tag + "_" +
         std::to_string(::getpid());
}

std::vector<uint8_t> Pattern(int64_t size, uint8_t seed) {
  std::vector<uint8_t> bytes(size);
  for (int64_t i = 0; i < size; ++i) {
    bytes[i] = static_cast<uint8_t>(seed + i);
  }
  return bytes;
}

// ---------- Buffer ----------

TEST(BufferTest, DefaultIsEmpty) {
  Buffer b;
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.size(), 0);
  EXPECT_EQ(b.data(), nullptr);
  EXPECT_EQ(b.use_count(), 0);
}

TEST(BufferTest, CopySharesBytesInsteadOfCopying) {
  Buffer a = Buffer::CopyOf("ratel", 5);
  Buffer b = a;
  EXPECT_EQ(a.data(), b.data());  // a ref, not a second allocation
  EXPECT_EQ(a.use_count(), 2);
  EXPECT_TRUE(a.shared());
  b.reset();
  EXPECT_FALSE(a.shared());
  EXPECT_EQ(std::memcmp(a.data(), "ratel", 5), 0);
}

TEST(BufferTest, MoveTransfersOwnership) {
  Buffer a = Buffer::CopyOf("xyz", 3);
  const uint8_t* ptr = a.data();
  Buffer b = std::move(a);
  EXPECT_EQ(b.data(), ptr);
  EXPECT_EQ(b.use_count(), 1);
  EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move): zeroed source
}

TEST(BufferTest, FromVectorAdoptsWithoutCopy) {
  std::vector<uint8_t> bytes = Pattern(1000, 7);
  const uint8_t* ptr = bytes.data();
  Buffer b = Buffer::FromVector(std::move(bytes));
  EXPECT_EQ(b.data(), ptr);  // adopted storage, no copy
  EXPECT_EQ(b.size(), 1000);
  EXPECT_EQ(b.data()[999], static_cast<uint8_t>(7 + 999));
}

// ---------- BufferPool ----------

TEST(BufferPoolTest, SizeClassesArePowersOfTwoAboveMinimum) {
  BufferPool pool;
  EXPECT_EQ(pool.SizeClassFor(1), BufferPool::kDefaultMinBlockBytes);
  EXPECT_EQ(pool.SizeClassFor(256), 256);
  EXPECT_EQ(pool.SizeClassFor(257), 512);
  EXPECT_EQ(pool.SizeClassFor(4096), 4096);
  EXPECT_EQ(pool.SizeClassFor(5000), 8192);
}

TEST(BufferPoolTest, ReleasedBlocksAreReusedNotReallocated) {
  BufferPool pool;
  const uint8_t* first_block;
  {
    Buffer a = pool.Lease(1000);
    first_block = a.data();
  }  // returns to the 1024-class free list
  Buffer b = pool.Lease(900);  // same class: must reuse the block
  EXPECT_EQ(b.data(), first_block);
  BufferPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.allocations, 1);
  EXPECT_EQ(stats.reuses, 1);
  EXPECT_EQ(stats.returns, 1);
  EXPECT_EQ(stats.outstanding_bytes, 1024);
  EXPECT_EQ(stats.pooled_bytes, 0);
}

TEST(BufferPoolTest, SteadyStateLoopMakesZeroAllocationsAfterWarmup) {
  BufferPool pool;
  // Warmup: the working set's size classes get their blocks.
  for (int i = 0; i < 3; ++i) {
    Buffer a = pool.Lease(4000);
    Buffer b = pool.Lease(2000);
  }
  const int64_t warm_allocs = pool.stats().allocations;
  for (int i = 0; i < 100; ++i) {
    Buffer a = pool.Lease(4000);
    Buffer b = pool.Lease(2000);
  }
  EXPECT_EQ(pool.stats().allocations, warm_allocs)
      << "steady-state leases must all be pool hits";
}

TEST(BufferPoolTest, StatsTrackOutstandingAndPooledBytes) {
  BufferPool pool;
  Buffer a = pool.Lease(300);  // class 512
  EXPECT_EQ(pool.stats().outstanding_bytes, 512);
  a.reset();
  EXPECT_EQ(pool.stats().outstanding_bytes, 0);
  EXPECT_EQ(pool.stats().pooled_bytes, 512);
  pool.Trim();
  EXPECT_EQ(pool.stats().pooled_bytes, 0);
}

TEST(BufferPoolTest, SharedLeaseReturnsOnlyWhenLastRefDrops) {
  BufferPool pool;
  Buffer a = pool.Lease(100);
  Buffer b = a;
  a.reset();
  EXPECT_EQ(pool.stats().returns, 0);  // b still holds the block
  b.reset();
  EXPECT_EQ(pool.stats().returns, 1);
}

TEST(BufferPoolTest, BuffersMayOutliveThePool) {
  Buffer survivor;
  {
    BufferPool pool;
    survivor = pool.Lease(128);
    std::memset(survivor.mutable_data(), 0xAB, 128);
  }  // pool dies first; the block frees to the heap on last ref
  EXPECT_EQ(survivor.data()[127], 0xAB);
  survivor.reset();  // must not crash or leak (ASan checks the latter)
}

TEST(BufferPoolTest, ZeroSizeLeaseDoesNotTouchThePool) {
  BufferPool pool;
  Buffer b = pool.Lease(0);
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(pool.stats().leases(), 0);
}

// The refcount/free-list churn TSan exists for: concurrent leases,
// cross-thread releases, and shared refs dropped from both sides.
TEST(BufferPoolTest, ConcurrentLeaseAndReleaseStress) {
  BufferPool pool;
  constexpr int kThreads = 4;
  constexpr int kIters = 500;
  std::atomic<int64_t> checksum_failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, &checksum_failures, t] {
      for (int i = 0; i < kIters; ++i) {
        const int64_t size = 64 + 97 * ((t * kIters + i) % 40);
        Buffer a = pool.Lease(size);
        std::memset(a.mutable_data(), static_cast<uint8_t>(t), size);
        Buffer b = a;  // share, then drop from this thread
        a.reset();
        if (b.data()[size - 1] != static_cast<uint8_t>(t)) {
          checksum_failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(checksum_failures.load(), 0);
  BufferPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.outstanding_bytes, 0);
  EXPECT_EQ(stats.returns, stats.leases());
}

// ---------- MemoryPool thread safety (internal mutex) ----------

TEST(MemoryPoolTest, ConcurrentAllocateFreeFromFourThreads) {
  MemoryPool pool("host", 1'000'000);
  constexpr int kThreads = 4;
  constexpr int kIters = 1000;
  constexpr int64_t kBytes = 100;  // 4 * 1000 * 100 fits capacity
  std::atomic<int64_t> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, &failures] {
      for (int i = 0; i < kIters; ++i) {
        Result<AllocationId> id = pool.Allocate(kBytes, "stress");
        if (!id.ok()) {
          failures.fetch_add(1);
          continue;
        }
        if (i % 2 == 0) {
          if (!pool.Free(*id).ok()) failures.fetch_add(1);
        }
      }
      pool.ResetPeak();
      (void)pool.DebugString();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  // Every thread kept its odd-iteration allocations live.
  const int64_t kept = kThreads * (kIters / 2);
  EXPECT_EQ(pool.num_live_allocations(), kept);
  EXPECT_EQ(pool.used(), kept * kBytes);
  pool.FreeAll();
  EXPECT_EQ(pool.used(), 0);
}

// ---------- TierCache with Buffer entries ----------

TEST(TierCacheBufferTest, TryGetRefServesByReferenceWithoutCopy) {
  auto store = BlockStore::Open(TempDir("refhit"), 2, 1 << 16);
  ASSERT_TRUE(store.ok());
  TierCache cache(store->get(), 1 << 20);
  std::vector<uint8_t> blob = Pattern(512, 3);
  ASSERT_TRUE(cache.Put("k", blob.data(), blob.size()).ok());

  Buffer ref1, ref2;
  ASSERT_TRUE(cache.TryGetRef("k", 512, &ref1));
  ASSERT_TRUE(cache.TryGetRef("k", 512, &ref2));
  EXPECT_EQ(ref1.data(), ref2.data());  // both refs, one allocation
  EXPECT_EQ(std::memcmp(ref1.data(), blob.data(), 512), 0);
  EXPECT_EQ(cache.stats().hits, 2);

  Buffer miss;
  EXPECT_FALSE(cache.TryGetRef("absent", 512, &miss));
  EXPECT_FALSE(cache.TryGetRef("k", 100, &miss));  // size mismatch = miss
}

TEST(TierCacheBufferTest, OutstandingRefSurvivesEvictionUnaliased) {
  auto store = BlockStore::Open(TempDir("evict"), 2, 1 << 16);
  ASSERT_TRUE(store.ok());
  // Capacity fits exactly one 512-byte entry: every insert evicts.
  TierCache cache(store->get(), 512);
  std::vector<uint8_t> old_bytes = Pattern(512, 11);
  ASSERT_TRUE(cache.Put("k", old_bytes.data(), 512).ok());

  Buffer held;
  ASSERT_TRUE(cache.TryGetRef("k", 512, &held));

  // Evict "k" by caching another key, then rewrite "k" with new bytes.
  std::vector<uint8_t> filler = Pattern(512, 200);
  ASSERT_TRUE(cache.Put("other", filler.data(), 512).ok());
  std::vector<uint8_t> new_bytes = Pattern(512, 77);
  ASSERT_TRUE(cache.Put("k", new_bytes.data(), 512).ok());

  // The reader's ref still sees the *old* bytes — eviction and rewrite
  // released the cache's reference, not the reader's.
  EXPECT_EQ(std::memcmp(held.data(), old_bytes.data(), 512), 0);

  Buffer fresh;
  ASSERT_TRUE(cache.TryGetRef("k", 512, &fresh));
  EXPECT_EQ(std::memcmp(fresh.data(), new_bytes.data(), 512), 0);
  EXPECT_NE(fresh.data(), held.data()) << "rewrite must not alias old ref";
}

TEST(TierCacheBufferTest, AdmitBufferTakesReferenceNotCopy) {
  auto store = BlockStore::Open(TempDir("admit"), 2, 1 << 16);
  ASSERT_TRUE(store.ok());
  TierCache cache(store->get(), 1 << 20);
  Buffer published = Buffer::CopyOf(Pattern(256, 9).data(), 256);
  cache.AdmitBuffer("k", published);
  Buffer ref;
  ASSERT_TRUE(cache.TryGetRef("k", 256, &ref));
  EXPECT_EQ(ref.data(), published.data());  // the same allocation
  EXPECT_GE(published.use_count(), 3);      // holder + cache + ref
}

}  // namespace
}  // namespace ratel
