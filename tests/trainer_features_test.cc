#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "autograd/transformer.h"
#include "common/rng.h"
#include "common/units.h"
#include "hw/catalog.h"
#include "optim/cpu_adam.h"
#include "runtime/dataset.h"
#include "runtime/ratel_trainer.h"

namespace ratel {
namespace {

std::string TempPath(const std::string& tag) {
  return ::testing::TempDir() + "/ratel_tf_" + tag + "_" +
         std::to_string(::getpid());
}

ag::TinyGptConfig SmallConfig() {
  ag::TinyGptConfig cfg;
  cfg.vocab_size = 32;
  cfg.seq_len = 8;
  cfg.hidden_dim = 16;
  cfg.num_heads = 2;
  cfg.num_layers = 2;
  return cfg;
}

// ---------- Flow trace capture ----------

TEST(FlowTraceTest, CapturesMonotonicPerFlowCounters) {
  ag::TinyGpt model(SmallConfig(), 61);
  TrainerOptions opts;
  opts.store_dir = TempPath("flowtrace");
  opts.capture_flow_trace = true;
  opts.spill_activations = true;
  auto trainer = RatelTrainer::Create(&model, opts);
  ASSERT_TRUE(trainer.ok());
  SyntheticDataset ds(SyntheticTask::kAffineMap, 32, 8, 12);
  const int kSteps = 3;
  for (int i = 0; i < kSteps; ++i) {
    const TokenBatch b = ds.NextBatch(2);
    ASSERT_TRUE((*trainer)->TrainStep(b.ids, b.targets, 2).ok());
  }
  const ScheduleTrace& trace = (*trainer)->flow_trace();
  ASSERT_FALSE(trace.counters().empty());
  // Two series (bytes_read, bytes_written) per flow class per step.
  EXPECT_EQ(trace.counters().size(),
            static_cast<size_t>(kSteps * kNumFlowClasses * 2));
  // Cumulative counters never decrease and timestamps advance.
  std::map<std::string, double> last_value;
  double last_time = -1.0;
  for (const auto& c : trace.counters()) {
    auto [it, inserted] = last_value.emplace(c.name, c.value);
    if (!inserted) {
      EXPECT_GE(c.value, it->second) << c.name;
      it->second = c.value;
    }
    EXPECT_GE(c.time, last_time - 1e-12);
    last_time = std::max(last_time, c.time);
  }
  // The param-fetch and grad-state flows moved real bytes.
  EXPECT_GT(last_value["xfer/param_fetch/bytes_read"], 0.0);
  EXPECT_GT(last_value["xfer/grad_state/bytes_written"], 0.0);
  EXPECT_GT(last_value["xfer/activation_spill/bytes_written"], 0.0);
  // The trace exports as valid Chrome JSON with counter events.
  const std::string json = trace.ToChromeJson();
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("xfer/param_fetch/bytes_read"), std::string::npos);
}

TEST(FlowTraceTest, DisabledByDefault) {
  ag::TinyGpt model(SmallConfig(), 62);
  TrainerOptions opts;
  opts.store_dir = TempPath("noflowtrace");
  auto trainer = RatelTrainer::Create(&model, opts);
  ASSERT_TRUE(trainer.ok());
  SyntheticDataset ds(SyntheticTask::kAffineMap, 32, 8, 12);
  const TokenBatch b = ds.NextBatch(2);
  ASSERT_TRUE((*trainer)->TrainStep(b.ids, b.targets, 2).ok());
  EXPECT_TRUE((*trainer)->flow_trace().counters().empty());
}

// ---------- Gradient accumulation ----------

TEST(GradAccumulationTest, MatchesSingleLargeBatch) {
  // One step over batch 4 with accumulation 2 must match accumulation 1
  // bit-for-bit: the micro-batch losses are means over equal slices, so
  // averaged gradients coincide.
  auto run = [&](int accum) {
    ag::TinyGpt model(SmallConfig(), 55);
    TrainerOptions opts;
    opts.grad_accumulation_steps = accum;
    opts.store_dir = TempPath("accum" + std::to_string(accum));
    auto trainer = RatelTrainer::Create(&model, opts);
    EXPECT_TRUE(trainer.ok());
    SyntheticDataset ds(SyntheticTask::kAffineMap, 32, 8, 12);
    const TokenBatch b = ds.EvalBatch(4);
    EXPECT_TRUE((*trainer)->TrainStep(b.ids, b.targets, 4).ok());
    std::vector<float> w;
    EXPECT_TRUE(
        (*trainer)->optimizer().FetchMasterParams("blk1/w_down", &w).ok());
    return w;
  };
  const std::vector<float> w1 = run(1);
  const std::vector<float> w2 = run(2);
  ASSERT_EQ(w1.size(), w2.size());
  // Gradients differ only by fp32 summation order inside the CE mean;
  // allow tiny drift.
  for (size_t i = 0; i < w1.size(); ++i) {
    EXPECT_NEAR(w1[i], w2[i], 2e-4f) << i;
  }
}

TEST(GradAccumulationTest, RejectsIndivisibleBatch) {
  ag::TinyGpt model(SmallConfig(), 56);
  TrainerOptions opts;
  opts.grad_accumulation_steps = 3;
  opts.store_dir = TempPath("indivisible");
  auto trainer = RatelTrainer::Create(&model, opts);
  ASSERT_TRUE(trainer.ok());
  SyntheticDataset ds(SyntheticTask::kAffineMap, 32, 8, 12);
  const TokenBatch b = ds.EvalBatch(4);
  EXPECT_EQ((*trainer)->TrainStep(b.ids, b.targets, 4).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(GradAccumulationTest, LossStillDecreases) {
  ag::TinyGpt model(SmallConfig(), 57);
  TrainerOptions opts;
  opts.grad_accumulation_steps = 2;
  opts.adam.lr = 3e-3;
  opts.store_dir = TempPath("accum_train");
  auto trainer = RatelTrainer::Create(&model, opts);
  ASSERT_TRUE(trainer.ok());
  SyntheticDataset ds(SyntheticTask::kAffineMap, 32, 8, 13);
  float first = 0.0f, last = 0.0f;
  for (int step = 0; step < 20; ++step) {
    const TokenBatch b = ds.NextBatch(4);
    auto loss = (*trainer)->TrainStep(b.ids, b.targets, 4);
    ASSERT_TRUE(loss.ok());
    if (step == 0) first = *loss;
    last = *loss;
  }
  EXPECT_LT(last, first);
}

// ---------- Mixed-precision loss scaling ----------

TEST(LossScalingTest, KernelUnscaleInvertsScale) {
  CpuAdamKernel kernel(AdamConfig{});
  constexpr int64_t kN = 128;
  Rng rng(3);
  std::vector<float> grads(kN);
  for (auto& g : grads) g = static_cast<float>(rng.NextGaussian()) * 0.01f;
  // Path A: unscaled fp16 grads.
  std::vector<Fp16> ga(kN);
  for (int64_t i = 0; i < kN; ++i) ga[i] = FloatToHalf(grads[i]);
  std::vector<float> pa(kN, 1.0f), ma(kN, 0.0f), va(kN, 0.0f);
  kernel.StepFp16Grads(1, kN, ga.data(), pa.data(), ma.data(), va.data(),
                       nullptr);
  // Path B: grads scaled by 1024 before the cast, unscaled in the kernel.
  std::vector<Fp16> gb(kN);
  for (int64_t i = 0; i < kN; ++i) gb[i] = FloatToHalf(grads[i] * 1024.0f);
  std::vector<float> pb(kN, 1.0f), mb(kN, 0.0f), vb(kN, 0.0f);
  kernel.StepFp16Grads(1, kN, gb.data(), pb.data(), mb.data(), vb.data(),
                       nullptr, 1.0f / 1024.0f);
  for (int64_t i = 0; i < kN; ++i) {
    EXPECT_NEAR(pa[i], pb[i], 2e-5f) << i;
  }
}

TEST(LossScalingTest, RescuesSubUnderflowGradients) {
  // Gradients below the smallest fp16 subnormal (~6e-8) vanish without
  // scaling but survive with a 2^14 scale.
  CpuAdamKernel kernel(AdamConfig{});
  const float tiny = 2e-8f;  // below half of the smallest fp16 subnormal
  std::vector<Fp16> unscaled{FloatToHalf(tiny)};
  EXPECT_EQ(HalfToFloat(unscaled[0]), 0.0f);  // lost
  const float scale = 16384.0f;
  std::vector<Fp16> scaled{FloatToHalf(tiny * scale)};
  std::vector<float> p{1.0f}, m{0.0f}, v{0.0f};
  kernel.StepFp16Grads(1, 1, scaled.data(), p.data(), m.data(), v.data(),
                       nullptr, 1.0f / scale);
  EXPECT_NE(m[0], 0.0f);  // the moment saw the gradient
  EXPECT_NEAR(m[0], 0.1f * tiny, 0.02f * tiny);
}

TEST(LossScalingTest, TrainerScaledRunMatchesUnscaled) {
  // With well-conditioned gradients, training with loss_scale 256 must
  // land near the unscaled run (scaling is numerically transparent).
  auto run = [&](float scale) {
    ag::TinyGpt model(SmallConfig(), 58);
    TrainerOptions opts;
    opts.loss_scale = scale;
    opts.store_dir = TempPath("scale" + std::to_string(scale));
    auto trainer = RatelTrainer::Create(&model, opts);
    EXPECT_TRUE(trainer.ok());
    SyntheticDataset ds(SyntheticTask::kPairSum, 32, 8, 14);
    for (int step = 0; step < 5; ++step) {
      const TokenBatch b = ds.NextBatch(2);
      EXPECT_TRUE((*trainer)->TrainStep(b.ids, b.targets, 2).ok());
    }
    std::vector<float> w;
    EXPECT_TRUE(
        (*trainer)->optimizer().FetchMasterParams("blk0/w_proj", &w).ok());
    return w;
  };
  const std::vector<float> w1 = run(1.0f);
  const std::vector<float> w256 = run(256.0f);
  ASSERT_EQ(w1.size(), w256.size());
  double max_diff = 0.0;
  for (size_t i = 0; i < w1.size(); ++i) {
    max_diff = std::max(max_diff,
                        static_cast<double>(std::fabs(w1[i] - w256[i])));
  }
  EXPECT_LT(max_diff, 5e-4);
}

// ---------- Hardware specs ----------

TEST(HwSpecsTest, ArrayBandwidthCappedByBridge) {
  SsdArraySpec arr;
  arr.ssd = catalog::IntelP5510();
  arr.host_bridge_bandwidth = 32e9;
  arr.count = 2;
  EXPECT_NEAR(arr.ReadBandwidth(), 2 * arr.ssd.read_bandwidth, 1.0);
  arr.count = 12;
  EXPECT_NEAR(arr.ReadBandwidth(), 32e9, 1.0);  // bridge cap
  EXPECT_NEAR(arr.WriteBandwidth(), 32e9, 1.0);
  EXPECT_EQ(arr.CapacityBytes(), 12 * arr.ssd.capacity_bytes);
}

TEST(HwSpecsTest, ServerPriceSumsComponents) {
  const ServerConfig s = catalog::MultiGpuServer(
      catalog::Rtx4090(), 4, 768 * kGiB, 6);
  EXPECT_NEAR(s.TotalPriceUsd(),
              14098.0 + 4 * 1600.0 + 6 * 308.0, 0.01);
  EXPECT_NEAR(catalog::DgxA100().TotalPriceUsd(), 200000.0, 0.01);
}

TEST(HwSpecsTest, CatalogSanity) {
  EXPECT_GT(catalog::Rtx4090().peak_fp16_flops,
            catalog::Rtx4080().peak_fp16_flops);
  EXPECT_GT(catalog::Rtx4080().peak_fp16_flops,
            catalog::Rtx3090().peak_fp16_flops);
  EXPECT_FALSE(catalog::Rtx4090().supports_gpudirect);
  EXPECT_TRUE(catalog::A100_80G().supports_gpudirect);
  EXPECT_GT(catalog::IntelP5510().endurance_bytes_written,
            catalog::IntelP5510().capacity_bytes);
}

}  // namespace
}  // namespace ratel
