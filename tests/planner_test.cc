#include "core/activation_planner.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <tuple>

#include "common/units.h"
#include "core/hardware_profile.h"
#include "hw/catalog.h"
#include "model/transformer_config.h"

namespace ratel {
namespace {

struct PlannerFixture {
  TransformerConfig config;
  WorkloadProfile workload;
  HardwareProfile hw;

  static PlannerFixture Make(const std::string& model, int batch,
                             int64_t mem_gib, int ssds) {
    auto cfg = LlmFromTableIV(model);
    EXPECT_TRUE(cfg.ok());
    PlannerFixture f{*cfg, WorkloadProfile::Build(*cfg, batch), {}};
    const ServerConfig server = catalog::EvaluationServer(
        catalog::Rtx4090(), mem_gib * kGiB, ssds);
    auto hp = HardwareProfiler(server).Profile(f.workload);
    EXPECT_TRUE(hp.ok()) << hp.status().ToString();
    f.hw = *hp;
    return f;
  }
};

TEST(ActivationPlannerTest, PlanAlwaysCoversCheckpoints) {
  const auto f = PlannerFixture::Make("13B", 32, 256, 12);
  const CostModel cm(f.hw, f.workload);
  const ActivationPlan plan = ActivationPlanner(cm).Plan();
  EXPECT_GE(plan.a_g2m, f.workload.inter_block_activation_bytes());
  // Every inter-block unit must be in the swap set.
  std::set<int> swapped(plan.swapped_units.begin(), plan.swapped_units.end());
  for (size_t i = 0; i < f.workload.activation_units().size(); ++i) {
    if (f.workload.activation_units()[i].inter_block) {
      EXPECT_TRUE(swapped.count(static_cast<int>(i))) << i;
    }
  }
}

TEST(ActivationPlannerTest, PlanInternallyConsistent) {
  const auto f = PlannerFixture::Make("13B", 48, 256, 12);
  const CostModel cm(f.hw, f.workload);
  const ActivationPlan plan = ActivationPlanner(cm).Plan();
  // a_g2m equals the sum of swapped unit bytes; flop_r the unswapped sum.
  int64_t bytes = 0;
  double flops = 0.0;
  std::set<int> swapped(plan.swapped_units.begin(), plan.swapped_units.end());
  for (size_t i = 0; i < f.workload.activation_units().size(); ++i) {
    const auto& u = f.workload.activation_units()[i];
    if (swapped.count(static_cast<int>(i))) {
      bytes += u.bytes;
    } else {
      flops += u.recompute_flops;
    }
  }
  EXPECT_EQ(bytes, plan.a_g2m);
  EXPECT_NEAR(flops, plan.flop_r, 1e-6 * (flops + 1));
  EXPECT_NEAR(plan.predicted_iter_time,
              cm.IterTime(static_cast<double>(plan.a_g2m), plan.flop_r),
              1e-12);
  EXPECT_EQ(plan.ssd_bytes,
            static_cast<int64_t>(
                cm.SsdActivationBytes(static_cast<double>(plan.a_g2m))));
}

// ---------- Algorithm 1 vs exhaustive search (optimality) ----------

using PlanParam = std::tuple<const char*, int, int64_t, int>;

class PlannerOptimalityTest : public ::testing::TestWithParam<PlanParam> {};

TEST_P(PlannerOptimalityTest, Algorithm1MatchesExhaustiveSearch) {
  const auto [model, batch, mem_gib, ssds] = GetParam();
  const auto f = PlannerFixture::Make(model, batch, mem_gib, ssds);
  const CostModel cm(f.hw, f.workload);
  const ActivationPlanner planner(cm);
  const ActivationPlan fast = planner.Plan();
  const ActivationPlan brute = planner.PlanByExhaustiveSearch();
  EXPECT_NEAR(fast.predicted_iter_time, brute.predicted_iter_time,
              1e-9 * brute.predicted_iter_time)
      << model << " b" << batch;
  EXPECT_EQ(fast.a_g2m, brute.a_g2m) << model << " b" << batch;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PlannerOptimalityTest,
    ::testing::Values(PlanParam{"6B", 8, 128, 3}, PlanParam{"6B", 64, 256, 12},
                      PlanParam{"13B", 16, 128, 1},
                      PlanParam{"13B", 24, 256, 12},
                      PlanParam{"13B", 32, 768, 12},
                      PlanParam{"13B", 64, 256, 6},
                      PlanParam{"30B", 16, 256, 12},
                      PlanParam{"70B", 16, 512, 12},
                      PlanParam{"70B", 32, 128, 3},
                      PlanParam{"135B", 8, 768, 12},
                      PlanParam{"175B", 4, 256, 12}),
    [](const ::testing::TestParamInfo<PlanParam>& info) {
      return std::string(std::get<0>(info.param)) + "_b" +
             std::to_string(std::get<1>(info.param)) + "_m" +
             std::to_string(std::get<2>(info.param)) + "_s" +
             std::to_string(std::get<3>(info.param));
    });

// ---------- Case detection (Section IV-D cases 1-3) ----------

TEST(ActivationPlannerTest, SmallBatchFewSsdsIsPcieBound) {
  // Few SSDs + small batch: extra swapping only adds traffic (Case 1;
  // Fig. 9b shows this for batch 24).
  const auto f = PlannerFixture::Make("13B", 8, 128, 1);
  const CostModel cm(f.hw, f.workload);
  const ActivationPlan plan = ActivationPlanner(cm).Plan();
  EXPECT_EQ(plan.swap_case, SwapCase::kPcieBound);
  EXPECT_EQ(plan.a_g2m, f.workload.inter_block_activation_bytes());
}

TEST(ActivationPlannerTest, LargeBatchManySsdsSwapsMore) {
  // Plenty of I/O headroom and a big batch: the planner moves past the
  // checkpoints (Cases 2/3; Fig. 9b batch 48/60 behaviour).
  const auto f = PlannerFixture::Make("13B", 64, 768, 12);
  const CostModel cm(f.hw, f.workload);
  const ActivationPlan plan = ActivationPlanner(cm).Plan();
  EXPECT_NE(plan.swap_case, SwapCase::kPcieBound);
  EXPECT_GT(plan.a_g2m, f.workload.inter_block_activation_bytes());
}

TEST(ActivationPlannerTest, PlanForAmountReachesTarget) {
  const auto f = PlannerFixture::Make("13B", 32, 256, 12);
  const CostModel cm(f.hw, f.workload);
  const ActivationPlanner planner(cm);
  const int64_t target = 40ll * 1000 * 1000 * 1000;
  const ActivationPlan plan = planner.PlanForAmount(target);
  EXPECT_GE(plan.a_g2m, target);
  // Overshoot is at most one unit.
  int64_t max_unit = 0;
  for (const auto& u : f.workload.activation_units()) {
    max_unit = std::max(max_unit, u.bytes);
  }
  EXPECT_LE(plan.a_g2m, target + max_unit);
}

TEST(ActivationPlannerTest, PlanForZeroSwapsNothing) {
  const auto f = PlannerFixture::Make("6B", 8, 256, 12);
  const CostModel cm(f.hw, f.workload);
  const ActivationPlan plan = ActivationPlanner(cm).PlanForAmount(0);
  EXPECT_EQ(plan.a_g2m, 0);
  EXPECT_TRUE(plan.swapped_units.empty());
  EXPECT_NEAR(plan.flop_r, cm.TotalRecomputableFlops(), 1.0);
}

TEST(ActivationPlannerTest, BudgetRespected) {
  const auto f = PlannerFixture::Make("13B", 32, 768, 12);
  const CostModel cm(f.hw, f.workload);
  const ActivationPlanner planner(cm);
  const int64_t budget = f.workload.total_activation_bytes() / 3;
  const ActivationPlan plan = planner.PlanWithObjective(
      budget, [&](double a, double fr) { return cm.IterTime(a, fr); });
  EXPECT_LE(plan.a_g2m, budget);
}

TEST(ActivationPlannerTest, UnboundedBudgetMatchesAlgorithm1) {
  const auto f = PlannerFixture::Make("13B", 48, 256, 12);
  const CostModel cm(f.hw, f.workload);
  const ActivationPlanner planner(cm);
  const ActivationPlan a = planner.Plan();
  const ActivationPlan b = planner.PlanWithObjective(
      f.workload.total_activation_bytes() + 1,
      [&](double x, double fr) { return cm.IterTime(x, fr); });
  EXPECT_EQ(a.a_g2m, b.a_g2m);
}

TEST(ActivationPlannerTest, CheckmateObjectiveFillsBudget) {
  // Minimizing FLOP_r alone swaps as much as the budget allows.
  const auto f = PlannerFixture::Make("13B", 32, 768, 12);
  const CostModel cm(f.hw, f.workload);
  const ActivationPlanner planner(cm);
  const int64_t budget = f.workload.total_activation_bytes() / 2;
  const ActivationPlan plan = planner.PlanWithObjective(
      budget, [](double, double fr) { return fr; });
  // Within one unit of the budget.
  int64_t max_unit = 0;
  for (const auto& u : f.workload.activation_units()) {
    max_unit = std::max(max_unit, u.bytes);
  }
  EXPECT_GE(plan.a_g2m, budget - max_unit);
  EXPECT_LE(plan.a_g2m, budget);
}

TEST(ActivationPlannerTest, HigherBenefitUnitsSwappedFirst) {
  // The minimum offloading benefit among swapped optional units must be
  // >= the maximum among recomputed ones (exchange-argument optimality).
  const auto f = PlannerFixture::Make("13B", 48, 256, 12);
  const CostModel cm(f.hw, f.workload);
  const ActivationPlan plan = ActivationPlanner(cm).Plan();
  std::set<int> swapped(plan.swapped_units.begin(), plan.swapped_units.end());
  double min_swapped = 1e30, max_recomputed = -1.0;
  for (size_t i = 0; i < f.workload.activation_units().size(); ++i) {
    const auto& u = f.workload.activation_units()[i];
    if (u.inter_block) continue;
    if (swapped.count(static_cast<int>(i))) {
      min_swapped = std::min(min_swapped, u.OffloadingBenefit());
    } else {
      max_recomputed = std::max(max_recomputed, u.OffloadingBenefit());
    }
  }
  if (max_recomputed >= 0.0 && min_swapped < 1e30) {
    EXPECT_GE(min_swapped, max_recomputed);
  }
}

}  // namespace
}  // namespace ratel
