// Fault-matrix suite (ctest label: fault).
//
// Sweeps every injected fault kind against every FlowClass through a
// real TransferEngine: {transient read error, transient write error,
// latency spike, torn write, dead stripe} x {param_fetch, grad_state,
// activation_spill, checkpoint, deferred_state}. Each cell must
// *complete* — correct
// bytes round-tripped, no giveups — while the injector and the engine's
// per-flow retry counters prove the fault actually fired and was
// recovered, not skipped. The schedule is deterministic (seeded,
// period-based), so these are not flaky "usually retries" tests: a
// fixed seed yields a fixed fault pattern on every run and thread
// interleaving.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/rng.h"
#include "runtime/job_manager.h"
#include "runtime/out_of_core_adam.h"
#include "storage/fault_injector.h"
#include "xfer/transfer_engine.h"

namespace ratel {
namespace {

std::string TempDir(const std::string& tag) {
  return ::testing::TempDir() + "/ratel_fault_" + tag + "_" +
         std::to_string(::getpid());
}

constexpr FaultKind kAllKinds[] = {
    FaultKind::kReadError, FaultKind::kWriteError, FaultKind::kLatencySpike,
    FaultKind::kTornWrite, FaultKind::kDeadStripe,
};

constexpr FlowClass kAllFlows[] = {
    FlowClass::kParamFetch,    FlowClass::kGradState,
    FlowClass::kActivationSpill, FlowClass::kCheckpoint,
    FlowClass::kDeferredState,
};

// Period 2 everywhere: a faulted attempt's immediate retry passes, so
// every cell converges within the default 3-attempt budget.
FaultConfig ConfigFor(FaultKind kind, uint64_t seed) {
  FaultConfig fault;
  fault.seed = seed;
  switch (kind) {
    case FaultKind::kReadError:
      fault.read_error_every = 2;
      break;
    case FaultKind::kWriteError:
      fault.write_error_every = 2;
      break;
    case FaultKind::kLatencySpike:
      fault.latency_spike_every = 2;
      fault.latency_spike_s = 1e-4;
      break;
    case FaultKind::kTornWrite:
      fault.torn_write_every = 2;
      break;
    case FaultKind::kDeadStripe:
      fault.dead_stripe = 0;
      break;
  }
  return fault;
}

TransferOptions FastRetryOptions(const std::string& dir) {
  TransferOptions opts;
  opts.dir = dir;
  opts.num_stripes = 4;
  opts.chunk_bytes = 4096;
  opts.io_workers = 2;
  // Keep the backoff discipline (exponential, jittered, deadline) but
  // at microsecond scale so the full matrix runs in well under a second.
  opts.retry.base_backoff_s = 1e-5;
  opts.retry.max_backoff_s = 1e-4;
  opts.retry.backoff_deadline_s = 1.0;
  return opts;
}

// Blobs span all four stripes (5 chunks of 4096), so the dead-stripe
// cell cannot dodge the failing device by allocation luck.
constexpr int kNumBlobs = 8;
constexpr int64_t kBlobBytes = 5 * 4096;

std::vector<uint8_t> BlobData(int index) {
  Rng rng(1000 + index);
  std::vector<uint8_t> data(kBlobBytes);
  for (auto& b : data) b = static_cast<uint8_t>(rng.NextU64());
  return data;
}

TEST(FaultMatrixTest, EveryFaultKindRecoversOnEveryFlowClass) {
  int cell = 0;
  for (FaultKind kind : kAllKinds) {
    for (FlowClass flow : kAllFlows) {
      SCOPED_TRACE(std::string(FaultKindName(kind)) + " x " +
                   FlowClassName(flow));
      TransferOptions opts = FastRetryOptions(
          TempDir(std::string("mx_") + FaultKindName(kind) + "_" +
                  FlowClassName(flow)));
      opts.fault = ConfigFor(kind, /*seed=*/0xFA17u + cell);
      opts.fault.flow_mask = 1u << static_cast<int>(flow);
      auto engine = TransferEngine::Open(opts);
      ASSERT_TRUE(engine.ok()) << engine.status().message();
      FaultInjector* injector = (*engine)->fault_injector();
      ASSERT_NE(injector, nullptr);
      // Latency spikes run against a virtual clock: behaviour stays
      // observable through counts() without wall-clock waits.
      injector->SetSleepFn([](double) {});

      for (int i = 0; i < kNumBlobs; ++i) {
        const std::vector<uint8_t> data = BlobData(i);
        const std::string key = "t/" + std::to_string(i);
        ASSERT_TRUE(
            (*engine)->Write(flow, key, data.data(), kBlobBytes).ok());
        std::vector<uint8_t> out(kBlobBytes);
        ASSERT_TRUE((*engine)->Read(flow, key, out.data(), kBlobBytes).ok());
        EXPECT_EQ(out, data) << "blob " << i << " corrupted";
      }

      const TransferStats stats = (*engine)->stats();
      const FlowCounters& c = stats.Flow(flow);
      EXPECT_EQ(c.bytes_written, kNumBlobs * kBlobBytes);
      EXPECT_EQ(c.bytes_read, kNumBlobs * kBlobBytes);
      EXPECT_EQ(c.errors, 0);
      EXPECT_EQ(c.giveups, 0);

      const FaultInjector::Counts counts = injector->counts();
      switch (kind) {
        case FaultKind::kReadError:
          EXPECT_GT(counts.read_errors, 0);
          EXPECT_GT(c.retries, 0);
          break;
        case FaultKind::kWriteError:
          EXPECT_GT(counts.write_errors, 0);
          EXPECT_GT(c.retries, 0);
          break;
        case FaultKind::kLatencySpike:
          // Spikes delay but never fail: all latency, no retries.
          EXPECT_GT(counts.latency_spikes, 0);
          EXPECT_EQ(c.retries, 0);
          break;
        case FaultKind::kTornWrite:
          EXPECT_GT(counts.torn_writes, 0);
          EXPECT_GT(c.retries, 0);
          break;
        case FaultKind::kDeadStripe:
          // The wear-out killed stripe 0; the store re-striped around
          // it and every blob still round-trips.
          EXPECT_GE(counts.stripe_write_failures,
                    opts.stripe_death_threshold);
          EXPECT_EQ((*engine)->store().num_dead_stripes(), 1);
          EXPECT_TRUE((*engine)->store().stripe_dead(0));
          break;
      }
      ++cell;
    }
  }
}

TEST(FaultMatrixTest, FlowMaskScopesFaultsToTheMaskedClass) {
  TransferOptions opts = FastRetryOptions(TempDir("scope"));
  opts.fault.seed = 0x5C0FEu;
  opts.fault.read_error_every = 2;
  opts.fault.flow_mask = 1u << static_cast<int>(FlowClass::kParamFetch);
  auto engine = TransferEngine::Open(opts);
  ASSERT_TRUE(engine.ok());

  for (int i = 0; i < kNumBlobs; ++i) {
    const std::vector<uint8_t> data = BlobData(i);
    const std::string key = "t/" + std::to_string(i);
    ASSERT_TRUE((*engine)
                    ->Write(FlowClass::kGradState, key, data.data(), kBlobBytes)
                    .ok());
  }
  // Same keys, two flows: grad_state reads pass untouched (masked out),
  // param_fetch reads hit the schedule and recover via retries.
  std::vector<uint8_t> out(kBlobBytes);
  for (int i = 0; i < kNumBlobs; ++i) {
    const std::string key = "t/" + std::to_string(i);
    ASSERT_TRUE(
        (*engine)->Read(FlowClass::kGradState, key, out.data(), kBlobBytes)
            .ok());
  }
  EXPECT_EQ((*engine)->fault_injector()->counts().read_errors, 0);
  EXPECT_EQ((*engine)->stats().Flow(FlowClass::kGradState).retries, 0);

  for (int i = 0; i < kNumBlobs; ++i) {
    const std::string key = "t/" + std::to_string(i);
    ASSERT_TRUE(
        (*engine)->Read(FlowClass::kParamFetch, key, out.data(), kBlobBytes)
            .ok());
    EXPECT_EQ(out, BlobData(i));
  }
  EXPECT_GT((*engine)->fault_injector()->counts().read_errors, 0);
  EXPECT_GT((*engine)->stats().Flow(FlowClass::kParamFetch).retries, 0);
}

TEST(FaultMatrixTest, DeadStripeRelocatesExistingBlobsWithoutDataLoss) {
  TransferOptions opts = FastRetryOptions(TempDir("restripe"));
  opts.fault.seed = 0xDEADu;
  opts.fault.dead_stripe = 0;
  // Wear-out only bites checkpoint traffic; param_fetch seeds the blobs
  // onto the healthy array first (including stripe 0).
  opts.fault.flow_mask = 1u << static_cast<int>(FlowClass::kCheckpoint);
  opts.stripe_death_threshold = 1;
  auto engine = TransferEngine::Open(opts);
  ASSERT_TRUE(engine.ok());

  const std::vector<uint8_t> v1 = BlobData(0);
  ASSERT_TRUE(
      (*engine)->Write(FlowClass::kParamFetch, "blob", v1.data(), kBlobBytes)
          .ok());
  ASSERT_EQ((*engine)->store().num_dead_stripes(), 0);

  // Same-size overwrite would normally reuse the extents in place — but
  // they touch stripe 0, whose first failure now trips the threshold.
  // The store declares the stripe dead, relocates the blob onto the
  // survivors, and completes the write in the same Put.
  const std::vector<uint8_t> v2 = BlobData(1);
  ASSERT_TRUE(
      (*engine)->Write(FlowClass::kCheckpoint, "blob", v2.data(), kBlobBytes)
          .ok());
  EXPECT_EQ((*engine)->store().num_dead_stripes(), 1);
  EXPECT_TRUE((*engine)->store().stripe_dead(0));
  EXPECT_GE((*engine)->store().relocations(), 1);

  std::vector<uint8_t> out(kBlobBytes);
  ASSERT_TRUE(
      (*engine)->Read(FlowClass::kCheckpoint, "blob", out.data(), kBlobBytes)
          .ok());
  EXPECT_EQ(out, v2);
  EXPECT_EQ((*engine)->stats().Flow(FlowClass::kCheckpoint).giveups, 0);
}

TEST(FaultMatrixTest, UnrecoverableFaultGivesUpAndCountsIt) {
  TransferOptions opts = FastRetryOptions(TempDir("giveup"));
  opts.fault.seed = 7;
  opts.fault.write_error_every = 1;  // every attempt fails
  auto engine = TransferEngine::Open(opts);
  ASSERT_TRUE(engine.ok());

  const std::vector<uint8_t> data = BlobData(0);
  const Status s =
      (*engine)->Write(FlowClass::kGradState, "doomed", data.data(),
                       kBlobBytes);
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  const TransferStats stats = (*engine)->stats();
  const FlowCounters& c = stats.Flow(FlowClass::kGradState);
  EXPECT_EQ(c.giveups, 1);
  EXPECT_EQ(c.errors, 1);
  EXPECT_EQ(c.retries, opts.retry.max_attempts - 1);
}

TEST(FaultMatrixTest, ZeroFaultConfigRunsCleanWithoutAnInjector) {
  TransferOptions opts = FastRetryOptions(TempDir("clean"));
  auto engine = TransferEngine::Open(opts);
  ASSERT_TRUE(engine.ok());
  // enabled() is false: no injector is allocated, so the hot path pays
  // nothing for the fault seam.
  EXPECT_EQ((*engine)->fault_injector(), nullptr);
  for (int i = 0; i < kNumBlobs; ++i) {
    const std::vector<uint8_t> data = BlobData(i);
    const std::string key = "t/" + std::to_string(i);
    ASSERT_TRUE((*engine)
                    ->Write(FlowClass::kActivationSpill, key, data.data(),
                            kBlobBytes)
                    .ok());
    std::vector<uint8_t> out(kBlobBytes);
    ASSERT_TRUE(
        (*engine)->Read(FlowClass::kActivationSpill, key, out.data(),
                        kBlobBytes)
            .ok());
    EXPECT_EQ(out, data);
  }
  const TransferStats stats = (*engine)->stats();
  const FlowCounters& c = stats.Flow(FlowClass::kActivationSpill);
  EXPECT_EQ(c.retries, 0);
  EXPECT_EQ(c.giveups, 0);
  EXPECT_EQ(c.backoff_seconds, 0.0);
}

TEST(FaultMatrixTest, EnvKnobsOverlayOntoBaseConfig) {
  ::setenv("RATEL_FAULT_SEED", "99", 1);
  ::setenv("RATEL_FAULT_READ_ERROR_EVERY", "3", 1);
  ::setenv("RATEL_FAULT_LATENCY_SPIKE_MS", "2.5", 1);
  ::setenv("RATEL_FAULT_FLOWS", "param_fetch,checkpoint", 1);
  FaultConfig base;
  base.torn_write_every = 7;  // not overridden by any knob: must survive
  const FaultConfig cfg = FaultConfig::FromEnv(base);
  ::unsetenv("RATEL_FAULT_SEED");
  ::unsetenv("RATEL_FAULT_READ_ERROR_EVERY");
  ::unsetenv("RATEL_FAULT_LATENCY_SPIKE_MS");
  ::unsetenv("RATEL_FAULT_FLOWS");

  EXPECT_EQ(cfg.seed, 99u);
  EXPECT_EQ(cfg.read_error_every, 3);
  EXPECT_DOUBLE_EQ(cfg.latency_spike_s, 2.5e-3);
  EXPECT_EQ(cfg.torn_write_every, 7);
  const uint32_t want_mask =
      (1u << static_cast<int>(FlowClass::kParamFetch)) |
      (1u << static_cast<int>(FlowClass::kCheckpoint));
  EXPECT_EQ(cfg.flow_mask, want_mask);
  EXPECT_TRUE(cfg.enabled());
}

TEST(FaultMatrixTest, EnvFlowListParsesDeferredState) {
  ::setenv("RATEL_FAULT_WRITE_ERROR_EVERY", "2", 1);
  ::setenv("RATEL_FAULT_FLOWS", "deferred_state", 1);
  const FaultConfig cfg = FaultConfig::FromEnv(FaultConfig{});
  ::unsetenv("RATEL_FAULT_WRITE_ERROR_EVERY");
  ::unsetenv("RATEL_FAULT_FLOWS");
  EXPECT_EQ(cfg.flow_mask,
            1u << static_cast<int>(FlowClass::kDeferredState));
}

// ---------- Deferred-state faults vs the foreground step ----------

// The async optimizer's whole point is that its tail writebacks never
// sit on the step's critical path — injected faults on kDeferredState
// must be retried/re-striped entirely in the background: every
// foreground step completes, the latency-critical flows never retry,
// and the final state still matches a clean synchronous run bitwise.

// 80 partition chunks of 64; the P32 blob (4n bytes) spans all four
// stripes, so the dead-stripe cell cannot dodge the failing device.
constexpr int64_t kTensorN = 64 * 80;
constexpr int kOptimSteps = 6;

std::vector<Fp16> StepGrads(int step) {
  Rng rng(7000 + step);
  std::vector<Fp16> g(kTensorN);
  for (auto& v : g) {
    v = FloatToHalf(static_cast<float>(rng.NextGaussian()) * 0.1f);
  }
  return g;
}

std::vector<float> InitParams() {
  Rng rng(6001);
  std::vector<float> p(kTensorN);
  for (auto& v : p) v = static_cast<float>(rng.NextGaussian()) * 0.5f;
  return p;
}

// Clean sync reference on an unfaulted engine.
std::vector<float> CleanSyncReference(const std::string& tag) {
  TransferOptions opts = FastRetryOptions(TempDir(tag));
  auto engine = TransferEngine::Open(opts);
  EXPECT_TRUE(engine.ok());
  OutOfCoreAdam adam(AdamConfig{}, engine->get());
  EXPECT_TRUE(adam.Register("w", InitParams()).ok());
  for (int step = 1; step <= kOptimSteps; ++step) {
    EXPECT_TRUE(adam.StepTensor("w", StepGrads(step)).ok());
  }
  std::vector<float> master;
  EXPECT_TRUE(adam.FetchMasterParams("w", &master).ok());
  return master;
}

TEST(FaultMatrixTest, DeferredStateWriteErrorsRetryWithoutForegroundRetries) {
  TransferOptions opts = FastRetryOptions(TempDir("dfs_we"));
  opts.host_cache_bytes = 1 << 20;  // published barrier: overlap stays
  opts.fault.seed = 0xD3F3u;
  opts.fault.write_error_every = 2;
  opts.fault.flow_mask = 1u << static_cast<int>(FlowClass::kDeferredState);
  auto engine = TransferEngine::Open(opts);
  ASSERT_TRUE(engine.ok());

  AsyncUpdateOptions async;
  async.async = true;
  async.hot_fraction = 0.25;
  async.chunk = 64;
  {
    OutOfCoreAdam adam(AdamConfig{}, engine->get(), async);
    ASSERT_TRUE(adam.Register("w", InitParams()).ok());
    for (int step = 1; step <= kOptimSteps; ++step) {
      // Every foreground step must complete despite the faulted epochs.
      ASSERT_TRUE(adam.StepTensor("w", StepGrads(step)).ok()) << step;
    }
    ASSERT_TRUE(adam.DrainAll().ok());
    EXPECT_GT(adam.stats().deferred_epochs, 0);

    std::vector<float> master;
    ASSERT_TRUE(adam.FetchMasterParams("w", &master).ok());
    const std::vector<float> ref = CleanSyncReference("dfs_we_ref");
    ASSERT_EQ(master.size(), ref.size());
    EXPECT_EQ(std::memcmp(master.data(), ref.data(),
                          master.size() * sizeof(float)),
              0)
        << "faulted async run diverged from the clean sync reference";
  }

  const TransferStats stats = (*engine)->stats();
  // The faults really fired — and were absorbed by background retries.
  EXPECT_GT((*engine)->fault_injector()->counts().write_errors, 0);
  EXPECT_GT(stats.Flow(FlowClass::kDeferredState).retries, 0);
  EXPECT_EQ(stats.Flow(FlowClass::kDeferredState).giveups, 0);
  EXPECT_EQ(stats.Flow(FlowClass::kDeferredState).errors, 0);
  // The foreground flows never saw a fault, let alone a retry.
  EXPECT_EQ(stats.Flow(FlowClass::kGradState).retries, 0);
  EXPECT_EQ(stats.Flow(FlowClass::kParamFetch).retries, 0);
  EXPECT_EQ(stats.Flow(FlowClass::kCheckpoint).retries, 0);
}

TEST(FaultMatrixTest, DeadStripeOnDeferredStateRestripesInTheBackground) {
  TransferOptions opts = FastRetryOptions(TempDir("dfs_ds"));
  opts.host_cache_bytes = 1 << 20;
  opts.fault.seed = 0xD3ADu;
  opts.fault.dead_stripe = 0;
  // Wear-out only bites the deferred writebacks; registration traffic
  // (kGradState) seeds the blobs onto the healthy array first.
  opts.fault.flow_mask = 1u << static_cast<int>(FlowClass::kDeferredState);
  opts.stripe_death_threshold = 1;
  auto engine = TransferEngine::Open(opts);
  ASSERT_TRUE(engine.ok());

  AsyncUpdateOptions async;
  async.async = true;
  async.hot_fraction = 0.25;
  async.chunk = 64;
  {
    OutOfCoreAdam adam(AdamConfig{}, engine->get(), async);
    ASSERT_TRUE(adam.Register("w", InitParams()).ok());
    for (int step = 1; step <= kOptimSteps; ++step) {
      ASSERT_TRUE(adam.StepTensor("w", StepGrads(step)).ok()) << step;
    }
    ASSERT_TRUE(adam.DrainAll().ok());

    // The first deferred writeback tripped the wear-out threshold; the
    // store declared stripe 0 dead and re-striped around it — all in
    // the background epoch, with zero foreground failures.
    EXPECT_EQ((*engine)->store().num_dead_stripes(), 1);
    EXPECT_TRUE((*engine)->store().stripe_dead(0));

    std::vector<float> master;
    ASSERT_TRUE(adam.FetchMasterParams("w", &master).ok());
    const std::vector<float> ref = CleanSyncReference("dfs_ds_ref");
    ASSERT_EQ(master.size(), ref.size());
    EXPECT_EQ(std::memcmp(master.data(), ref.data(),
                          master.size() * sizeof(float)),
              0);
  }

  const TransferStats stats = (*engine)->stats();
  EXPECT_EQ(stats.Flow(FlowClass::kDeferredState).giveups, 0);
  EXPECT_EQ(stats.Flow(FlowClass::kGradState).retries, 0);
  EXPECT_EQ(stats.Flow(FlowClass::kParamFetch).retries, 0);
}

// ---------- Codec column: faults on encoded frames ----------

// The codec path must inherit the whole fault matrix: store-level
// faults on *framed* traffic recover exactly like raw traffic, and the
// frame CRC adds a detection layer the raw path lacks — corruption
// that survives the store round trip (bit rot, a torn frame) fails the
// decode, is retried per RetryPolicy, and surfaces as kDataLoss after
// the budget instead of ever decoding silent garbage.

TEST(FaultMatrixTest, CodecFramedFlowRecoversFromEveryFaultKind) {
  int cell = 0;
  for (FaultKind kind : kAllKinds) {
    SCOPED_TRACE(std::string(FaultKindName(kind)) + " x identity codec");
    TransferOptions opts = FastRetryOptions(
        TempDir(std::string("cx_") + FaultKindName(kind)));
    opts.codec.spec(FlowClass::kCheckpoint) = "identity";
    opts.fault = ConfigFor(kind, /*seed=*/0xC0DEC0u + cell);
    opts.fault.flow_mask = 1u << static_cast<int>(FlowClass::kCheckpoint);
    auto engine = TransferEngine::Open(opts);
    ASSERT_TRUE(engine.ok()) << engine.status().message();
    (*engine)->fault_injector()->SetSleepFn([](double) {});

    for (int i = 0; i < kNumBlobs; ++i) {
      const std::vector<uint8_t> data = BlobData(i);
      const std::string key = "c/" + std::to_string(i);
      ASSERT_TRUE((*engine)
                      ->Write(FlowClass::kCheckpoint, key, data.data(),
                              kBlobBytes)
                      .ok());
      std::vector<uint8_t> out(kBlobBytes);
      ASSERT_TRUE(
          (*engine)->Read(FlowClass::kCheckpoint, key, out.data(), kBlobBytes)
              .ok());
      EXPECT_EQ(out, data) << "blob " << i << " corrupted";
    }

    const TransferStats stats = (*engine)->stats();
    const FlowCounters& c = stats.Flow(FlowClass::kCheckpoint);
    EXPECT_EQ(c.bytes_written, kNumBlobs * kBlobBytes);
    EXPECT_EQ(c.bytes_read, kNumBlobs * kBlobBytes);
    EXPECT_EQ(c.errors, 0);
    EXPECT_EQ(c.giveups, 0);
    // Every successful read decoded exactly one frame; store-level
    // faults never produced a bad frame (the store's own detection
    // retried them *before* the decode hook), so no decode failures.
    EXPECT_EQ(c.encodes, kNumBlobs);
    EXPECT_GE(c.decodes, kNumBlobs);
    EXPECT_EQ(c.decode_failures, 0);
    if (kind == FaultKind::kReadError || kind == FaultKind::kWriteError ||
        kind == FaultKind::kTornWrite) {
      EXPECT_GT(c.retries, 0);
    }
    ++cell;
  }
}

// Plants corruption that the store itself cannot see: a doctored frame
// written through a raw (codec-less) flow to the key the codec'd flow
// will read. Only the frame CRC stands between that and garbage output.
void PlantCorruptFrame(TransferEngine* engine, const std::string& key,
                       const std::vector<uint8_t>& logical,
                       size_t flip_offset) {
  auto codec = MakeIdentityCodec();
  std::vector<uint8_t> frame(
      FrameSizeFor(*codec, static_cast<int64_t>(logical.size())));
  EncodeFrame(*codec, logical.data(), static_cast<int64_t>(logical.size()),
              frame.data());
  frame[flip_offset] ^= 0x10;  // bit rot
  ASSERT_TRUE(engine
                  ->Write(FlowClass::kParamFetch, key, frame.data(),
                          static_cast<int64_t>(frame.size()))
                  .ok());
}

TEST(FaultMatrixTest, BitRotInAFrameIsDetectedRetriedAndSurfaced) {
  TransferOptions opts = FastRetryOptions(TempDir("bitrot"));
  opts.codec.spec(FlowClass::kCheckpoint) = "identity";
  auto engine = TransferEngine::Open(opts);
  ASSERT_TRUE(engine.ok());

  const std::vector<uint8_t> data = BlobData(0);
  // Payload rot and header rot both funnel into the same kDataLoss.
  PlantCorruptFrame(engine->get(), "rot/payload", data,
                    /*flip_offset=*/static_cast<size_t>(32 + 1000));
  PlantCorruptFrame(engine->get(), "rot/header", data, /*flip_offset=*/9);

  for (const std::string key : {"rot/payload", "rot/header"}) {
    std::vector<uint8_t> out(kBlobBytes, 0xEE);
    const Status s =
        (*engine)->Read(FlowClass::kCheckpoint, key, out.data(), kBlobBytes);
    // Never silent garbage: the read *fails*, with the data-loss code.
    EXPECT_EQ(s.code(), StatusCode::kDataLoss) << key;
  }

  const TransferStats stats = (*engine)->stats();
  const FlowCounters& c = stats.Flow(FlowClass::kCheckpoint);
  // Persistent corruption is retried like a torn write — the full
  // budget per read — then surfaced and counted, every attempt landing
  // in the decode_failures column.
  EXPECT_EQ(c.decodes, 2 * opts.retry.max_attempts);
  EXPECT_EQ(c.decode_failures, 2 * opts.retry.max_attempts);
  EXPECT_EQ(c.retries, 2 * (opts.retry.max_attempts - 1));
  EXPECT_EQ(c.giveups, 2);
  EXPECT_EQ(c.errors, 2);
}

TEST(FaultMatrixTest, TornFrameTailIsDetectedByThePayloadCrc) {
  // A torn frame: the header and the first half of the payload are
  // intact, the tail is stale garbage — exactly what a power-cut
  // mid-write leaves behind. The payload CRC must reject it.
  TransferOptions opts = FastRetryOptions(TempDir("tornframe"));
  opts.codec.spec(FlowClass::kGradState) = "identity";
  auto engine = TransferEngine::Open(opts);
  ASSERT_TRUE(engine.ok());

  const std::vector<uint8_t> data = BlobData(1);
  auto codec = MakeIdentityCodec();
  std::vector<uint8_t> frame(FrameSizeFor(*codec, kBlobBytes));
  EncodeFrame(*codec, data.data(), kBlobBytes, frame.data());
  for (size_t i = frame.size() / 2; i < frame.size(); ++i) {
    frame[i] = 0xA5;  // stale tail
  }
  ASSERT_TRUE((*engine)
                  ->Write(FlowClass::kParamFetch, "torn", frame.data(),
                          static_cast<int64_t>(frame.size()))
                  .ok());

  std::vector<uint8_t> out(kBlobBytes);
  EXPECT_EQ(
      (*engine)->Read(FlowClass::kGradState, "torn", out.data(), kBlobBytes)
          .code(),
      StatusCode::kDataLoss);
  const TransferStats stats = (*engine)->stats();
  const FlowCounters& c = stats.Flow(FlowClass::kGradState);
  EXPECT_EQ(c.decode_failures, opts.retry.max_attempts);
  EXPECT_EQ(c.giveups, 1);
}

TEST(FaultMatrixTest, TransientReadFaultsOnFramesDecodeAfterRetry) {
  // Store-level read errors under a codec'd flow: the failed store
  // attempts never reach the decode hook, the retried attempt decodes
  // cleanly — transient faults cost retries, not decode failures.
  TransferOptions opts = FastRetryOptions(TempDir("codec_transient"));
  opts.codec.spec(FlowClass::kActivationSpill) = "fp16";
  opts.fault.seed = 0xF1FA;
  opts.fault.read_error_every = 2;
  opts.fault.flow_mask = 1u << static_cast<int>(FlowClass::kActivationSpill);
  auto engine = TransferEngine::Open(opts);
  ASSERT_TRUE(engine.ok());

  Rng rng(8);
  std::vector<float> vals(kBlobBytes / 4);
  for (auto& v : vals) v = static_cast<float>(rng.NextGaussian());
  for (int i = 0; i < kNumBlobs; ++i) {
    const std::string key = "a/" + std::to_string(i);
    ASSERT_TRUE((*engine)
                    ->Write(FlowClass::kActivationSpill, key, vals.data(),
                            kBlobBytes)
                    .ok());
    std::vector<float> out(vals.size());
    ASSERT_TRUE((*engine)
                    ->Read(FlowClass::kActivationSpill, key, out.data(),
                           kBlobBytes)
                    .ok());
    for (size_t j = 0; j < vals.size(); ++j) {
      ASSERT_EQ(out[j], HalfToFloat(FloatToHalf(vals[j]))) << j;
    }
  }

  const TransferStats stats = (*engine)->stats();
  const FlowCounters& c = stats.Flow(FlowClass::kActivationSpill);
  EXPECT_GT((*engine)->fault_injector()->counts().read_errors, 0);
  EXPECT_GT(c.retries, 0);
  EXPECT_EQ(c.giveups, 0);
  // One successful decode per read; the store-failed attempts never
  // consumed a decode.
  EXPECT_EQ(c.decodes, kNumBlobs);
  EXPECT_EQ(c.decode_failures, 0);
}

// ---------- Tenant-scoped fault storms (multi-tenant isolation) ----------

TEST(FaultMatrixTest, RetryStormScopedToOneTenantLeavesTheNeighborClean) {
  // Two jobs share one engine whose fault model is scoped to job A's
  // key namespace (FaultConfig::key_prefix = "jobA/"): every second
  // write of an A-owned blob fails transiently. A must recover through
  // retries; B's per-tenant counters must show zero recovery work —
  // no retries, no errors, no backoff stalls leaking across tenants.
  JobManager::Options options;
  options.engine = FastRetryOptions(TempDir("tenant_storm"));
  options.engine.fault.write_error_every = 2;
  options.engine.fault.key_prefix = "jobA/";
  auto manager_or = JobManager::Create(options);
  ASSERT_TRUE(manager_or.ok());
  JobManager& manager = **manager_or;

  JobSpec spec;
  spec.model.vocab_size = 48;
  spec.model.seq_len = 8;
  spec.model.hidden_dim = 24;
  spec.model.num_heads = 2;
  spec.model.num_layers = 2;
  spec.batch = 2;
  spec.steps = 3;
  spec.name = "jobA";
  spec.seed = 1;
  ASSERT_TRUE(manager.Submit(spec).ok());
  spec.name = "jobB";
  spec.seed = 2;
  ASSERT_TRUE(manager.Submit(spec).ok());
  ASSERT_TRUE(manager.WaitAll().ok());

  const JobManagerStats stats = manager.Stats();
  ASSERT_EQ(stats.jobs.size(), 2u);
  const JobStats* job_a = &stats.jobs[0];
  const JobStats* job_b = &stats.jobs[1];
  if (job_a->name != "jobA") std::swap(job_a, job_b);
  ASSERT_EQ(job_a->name, "jobA");

  // Both jobs trained to completion despite the storm.
  EXPECT_EQ(job_a->state, JobState::kFinished);
  EXPECT_EQ(job_b->state, JobState::kFinished);
  EXPECT_EQ(job_a->steps_done, 3);
  EXPECT_EQ(job_b->steps_done, 3);

  int64_t a_retries = 0;
  for (int f = 0; f < kNumFlowClasses; ++f) {
    const FlowCounters& a = job_a->xfer.flow[f];
    const FlowCounters& b = job_b->xfer.flow[f];
    a_retries += a.retries;
    EXPECT_EQ(a.giveups, 0) << "flow " << f;
    // The isolation contract: none of A's recovery work is charged to
    // B, and B saw no faults of its own.
    EXPECT_EQ(b.retries, 0) << "flow " << f;
    EXPECT_EQ(b.giveups, 0) << "flow " << f;
    EXPECT_EQ(b.errors, 0) << "flow " << f;
    EXPECT_EQ(b.backoff_seconds, 0.0) << "flow " << f;
  }
  EXPECT_GT(a_retries, 0);  // the storm really hit A
}

}  // namespace
}  // namespace ratel
