#include "runtime/prefetcher.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

namespace ratel {
namespace {

std::vector<std::string> Keys(int n) {
  std::vector<std::string> keys;
  for (int i = 0; i < n; ++i) keys.push_back("k" + std::to_string(i));
  return keys;
}

TEST(PrefetcherTest, DeliversAllKeysInOrder) {
  Prefetcher pf(Keys(20), 3,
                [](const std::string& key, std::vector<uint8_t>* out) {
                  out->assign(key.begin(), key.end());
                  return Status::Ok();
                });
  for (int i = 0; i < 20; ++i) {
    const Prefetcher::Item item = pf.Next();
    EXPECT_EQ(item.key, "k" + std::to_string(i));
    EXPECT_TRUE(item.status.ok());
    EXPECT_EQ(std::string(item.data.begin(), item.data.end()), item.key);
  }
  EXPECT_EQ(pf.remaining(), 0);
}

TEST(PrefetcherTest, LookaheadBounded) {
  std::atomic<int> in_flight{0};
  std::atomic<int> max_in_flight{0};
  constexpr int kDepth = 2;
  Prefetcher pf(Keys(12), kDepth,
                [&](const std::string&, std::vector<uint8_t>* out) {
                  const int now = in_flight.fetch_add(1) + 1;
                  int prev = max_in_flight.load();
                  while (now > prev &&
                         !max_in_flight.compare_exchange_weak(prev, now)) {
                  }
                  out->resize(8);
                  return Status::Ok();
                });
  // Drain slowly so the window fills between pops.
  for (int i = 0; i < 12; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    const Prefetcher::Item item = pf.Next();
    in_flight.fetch_sub(1);
    EXPECT_TRUE(item.status.ok());
  }
  // At most depth buffered + the one being handed over.
  EXPECT_LE(max_in_flight.load(), kDepth + 1);
}

TEST(PrefetcherTest, ErrorsDeliveredPerKey) {
  Prefetcher pf(Keys(3), 2,
                [](const std::string& key, std::vector<uint8_t>* out) {
                  if (key == "k1") return Status::NotFound("missing");
                  out->resize(4);
                  return Status::Ok();
                });
  EXPECT_TRUE(pf.Next().status.ok());
  const Prefetcher::Item bad = pf.Next();
  EXPECT_EQ(bad.status.code(), StatusCode::kNotFound);
  EXPECT_TRUE(pf.Next().status.ok());  // pipeline continues past errors
}

TEST(PrefetcherTest, OverlapsFetchWithConsumption) {
  // 10 fetches of 10 ms each, consumer work of 10 ms each: serial would
  // take ~200 ms; a depth-4 pipeline should land well under 150 ms.
  const auto t0 = std::chrono::steady_clock::now();
  Prefetcher pf(Keys(10), 4,
                [](const std::string&, std::vector<uint8_t>* out) {
                  std::this_thread::sleep_for(std::chrono::milliseconds(10));
                  out->resize(16);
                  return Status::Ok();
                });
  for (int i = 0; i < 10; ++i) {
    const Prefetcher::Item item = pf.Next();
    EXPECT_TRUE(item.status.ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(10));  // "compute"
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(elapsed, 0.17);
  EXPECT_GE(elapsed, 0.10);  // cannot beat the consumer-side floor
}

TEST(PrefetcherTest, DestructorAbandonsCleanly) {
  // Destroy with undrained items: must not hang or crash.
  auto pf = std::make_unique<Prefetcher>(
      Keys(50), 2, [](const std::string&, std::vector<uint8_t>* out) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        out->resize(4);
        return Status::Ok();
      });
  EXPECT_TRUE(pf->Next().status.ok());
  pf.reset();  // 48+ keys never drained
  SUCCEED();
}

}  // namespace
}  // namespace ratel
