#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "autograd/transformer.h"
#include "common/rng.h"
#include "runtime/out_of_core_adam.h"
#include "runtime/ratel_trainer.h"
#include "runtime/thread_pool.h"

namespace ratel {
namespace {

std::string TempDir(const std::string& tag) {
  return ::testing::TempDir() + "/ratel_rt_" + tag + "_" +
         std::to_string(::getpid());
}

Result<std::unique_ptr<TransferEngine>> OpenEngine(const std::string& tag) {
  TransferOptions opts;
  opts.dir = TempDir(tag);
  opts.num_stripes = 2;
  opts.chunk_bytes = 4096;
  return TransferEngine::Open(opts);
}

// ---------- ThreadPool ----------

TEST(ThreadPoolTest, ExecutesAllTasks) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&] { counter.fetch_add(1); });
  pool.Submit([&] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 3);
}

TEST(ThreadPoolTest, WaitOnEmptyPoolReturns) {
  ThreadPool pool(1);
  pool.Wait();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedTasksAndIsIdempotent) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Shutdown();
  EXPECT_EQ(counter.load(), 50);  // queued work ran, not dropped
  pool.Shutdown();                // second call is a no-op
  pool.Wait();                    // post-shutdown Wait returns immediately
}

TEST(ThreadPoolDeathTest, SubmitAfterShutdownIsCheckedFailure) {
  ThreadPool pool(2);
  pool.Shutdown();  // workers joined: death-test fork below is safe
  EXPECT_DEATH(pool.Submit([] {}), "after Shutdown");
}

TEST(ThreadPoolTest, WaitCoversTasksSubmittedWhileWaiting) {
  // Pinned semantics: a task submitted *from inside a running task*
  // extends Wait(); Wait returns only once the pool is fully idle.
  ThreadPool pool(2);
  std::atomic<bool> follow_up_ran{false};
  pool.Submit([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    pool.Submit([&] { follow_up_ran.store(true); });
  });
  pool.Wait();
  EXPECT_TRUE(follow_up_ran.load());
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(0, 1000, 7, [&](int64_t b, int64_t e) {
    EXPECT_LT(b, e);
    EXPECT_LE(e - b, 7);
    for (int64_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  pool.ParallelFor(5, 5, 4, [&](int64_t, int64_t) { FAIL(); });  // empty
}

TEST(ThreadPoolTest, ParallelForProgressesWhenAllWorkersAreBusy) {
  // The caller claims chunks itself, so a ParallelFor issued while every
  // worker is blocked still completes (the nested/concurrent case hit by
  // Adam handlers running on the trainer pipeline).
  ThreadPool pool(2);
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  for (int i = 0; i < 2; ++i) {
    pool.Submit([&] {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return release; });
    });
  }
  std::atomic<int64_t> sum{0};
  pool.ParallelFor(0, 64, 8, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) sum.fetch_add(i);
  });
  EXPECT_EQ(sum.load(), 64 * 63 / 2);
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  pool.Wait();
}

TEST(TaskGroupTest, WaitCoversOnlyThisGroupsTasks) {
  ThreadPool pool(2);
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<bool> outsider_done{false};
  // An unrelated long-running task on the shared pool...
  pool.Submit([&] {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
    outsider_done.store(true);
  });
  // ...must not block the group's Wait.
  TaskGroup group(&pool);
  std::atomic<int> group_ran{0};
  group.Submit([&] { group_ran.fetch_add(1); });
  group.Submit([&] { group_ran.fetch_add(1); });
  group.Wait();
  EXPECT_EQ(group_ran.load(), 2);
  EXPECT_FALSE(outsider_done.load());
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  pool.Wait();
  EXPECT_TRUE(outsider_done.load());
}

// ---------- OutOfCoreAdam ----------

TEST(OutOfCoreAdamTest, MatchesInMemoryChunkedAdam) {
  auto engine = OpenEngine("ooc");
  ASSERT_TRUE(engine.ok());
  AdamConfig cfg;
  cfg.lr = 1e-2;
  OutOfCoreAdam ooc(cfg, engine->get());
  ChunkedCpuAdam ram(cfg);

  Rng rng(3);
  std::vector<float> init(512);
  for (auto& v : init) v = static_cast<float>(rng.NextGaussian());
  ASSERT_TRUE(ooc.Register("w", init).ok());
  ASSERT_TRUE(ram.Register("w", init).ok());

  for (int step = 0; step < 5; ++step) {
    std::vector<Fp16> g(512);
    for (auto& v : g) {
      v = FloatToHalf(static_cast<float>(rng.NextGaussian() * 0.1));
    }
    ASSERT_TRUE(ooc.StepTensor("w", g).ok());
    ASSERT_TRUE(ram.StepTensor("w", g, nullptr).ok());
  }
  std::vector<float> master;
  ASSERT_TRUE(ooc.FetchMasterParams("w", &master).ok());
  auto ref = ram.MasterParams("w");
  ASSERT_TRUE(ref.ok());
  for (size_t i = 0; i < master.size(); ++i) {
    ASSERT_FLOAT_EQ(master[i], (**ref)[i]) << i;
  }
}

TEST(OutOfCoreAdamTest, P16CopyTracksMaster) {
  auto engine = OpenEngine("p16");
  ASSERT_TRUE(engine.ok());
  OutOfCoreAdam ooc(AdamConfig{}, engine->get());
  ASSERT_TRUE(ooc.Register("w", {0.25f, -0.75f}).ok());
  std::vector<Fp16> p16;
  ASSERT_TRUE(ooc.FetchParams16("w", &p16).ok());
  ASSERT_EQ(p16.size(), 2u);
  EXPECT_FLOAT_EQ(HalfToFloat(p16[0]), 0.25f);
  EXPECT_FLOAT_EQ(HalfToFloat(p16[1]), -0.75f);
  std::vector<Fp16> g{FloatToHalf(1.0f), FloatToHalf(1.0f)};
  ASSERT_TRUE(ooc.StepTensor("w", g).ok());
  std::vector<float> master;
  ASSERT_TRUE(ooc.FetchMasterParams("w", &master).ok());
  ASSERT_TRUE(ooc.FetchParams16("w", &p16).ok());
  EXPECT_NEAR(HalfToFloat(p16[0]), master[0], 1e-3f);
}

TEST(OutOfCoreAdamTest, TrafficAccountingMatchesTableII) {
  auto engine = OpenEngine("traffic");
  ASSERT_TRUE(engine.ok());
  OutOfCoreAdam ooc(AdamConfig{}, engine->get());
  constexpr int64_t kN = 1000;
  ASSERT_TRUE(ooc.Register("w", std::vector<float>(kN, 0.1f)).ok());
  const TransferStats after_register = (*engine)->stats();
  // P32 + OS32 + P16 seed, all on the model-state flow.
  EXPECT_EQ(after_register.Flow(FlowClass::kGradState).bytes_written, 14 * kN);
  std::vector<Fp16> g(kN, FloatToHalf(0.01f));
  ASSERT_TRUE(ooc.StepTensor("w", g).ok());
  const TransferStats step =
      Delta((*engine)->stats(), after_register);
  // Per step: read 12 bytes/param (P32+OS32), write 14 (P32+OS32+P16).
  EXPECT_EQ(step.Flow(FlowClass::kGradState).bytes_read, 12 * kN);
  EXPECT_EQ(step.Flow(FlowClass::kGradState).bytes_written, 14 * kN);
  // The P16 forward fetch travels on its own flow: 2 bytes/param.
  std::vector<Fp16> p16;
  ASSERT_TRUE(ooc.FetchParams16("w", &p16).ok());
  const TransferStats fetched = (*engine)->stats();
  EXPECT_EQ(fetched.Flow(FlowClass::kParamFetch).bytes_read, 2 * kN);
  // No DRAM tier configured: per-flow totals reconcile with the store.
  EXPECT_EQ(fetched.TotalBytesWritten(), fetched.store_bytes_written);
  EXPECT_EQ(fetched.TotalBytesRead(), fetched.store_bytes_read);
}

TEST(OutOfCoreAdamTest, ErrorsSurface) {
  auto engine = OpenEngine("err");
  ASSERT_TRUE(engine.ok());
  OutOfCoreAdam ooc(AdamConfig{}, engine->get());
  ASSERT_TRUE(ooc.Register("w", {1.0f}).ok());
  EXPECT_EQ(ooc.Register("w", {1.0f}).code(), StatusCode::kAlreadyExists);
  std::vector<Fp16> wrong(3);
  EXPECT_EQ(ooc.StepTensor("w", wrong).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ooc.StepTensor("nope", wrong).code(), StatusCode::kNotFound);
}

// ---------- RatelTrainer end-to-end (the Fig. 4 integration) ----------

ag::TinyGptConfig SmallConfig() {
  ag::TinyGptConfig cfg;
  cfg.vocab_size = 48;
  cfg.seq_len = 8;
  cfg.hidden_dim = 24;
  cfg.num_heads = 2;
  cfg.num_layers = 2;
  return cfg;
}

void MakeBatch(Rng& rng, int64_t n, int64_t vocab, std::vector<int64_t>* ids,
               std::vector<int64_t>* targets) {
  ids->resize(n);
  targets->resize(n);
  for (int64_t i = 0; i < n; ++i) {
    // A learnable synthetic task: next token = (token * 3 + 1) mod V.
    (*ids)[i] = static_cast<int64_t>(rng.NextBelow(vocab));
    (*targets)[i] = ((*ids)[i] * 3 + 1) % vocab;
  }
}

TEST(RatelTrainerTest, LossDecreasesOverSteps) {
  ag::TinyGpt model(SmallConfig(), 11);
  TrainerOptions opts;
  opts.store_dir = TempDir("train");
  opts.adam.lr = 3e-3;
  auto trainer = RatelTrainer::Create(&model, opts);
  ASSERT_TRUE(trainer.ok()) << trainer.status().ToString();

  Rng rng(5);
  std::vector<int64_t> ids, targets;
  float first = 0.0f, last = 0.0f;
  for (int step = 0; step < 25; ++step) {
    MakeBatch(rng, 2 * 8, 48, &ids, &targets);
    auto loss = (*trainer)->TrainStep(ids, targets, 2);
    ASSERT_TRUE(loss.ok()) << loss.status().ToString();
    if (step == 0) first = *loss;
    last = *loss;
  }
  EXPECT_LT(last, first * 0.8f) << first << " -> " << last;
}

TEST(RatelTrainerTest, GradModesConvergeToSameParameters) {
  // The three offloading pipelines must be numerically identical: the
  // schedule changes, the math does not.
  std::vector<std::vector<float>> finals;
  for (GradientOffloadMode mode :
       {GradientOffloadMode::kSerializedOptimizer,
        GradientOffloadMode::kNaiveActive,
        GradientOffloadMode::kOptimizedActive}) {
    ag::TinyGpt model(SmallConfig(), 22);
    TrainerOptions opts;
    opts.grad_mode = mode;
    opts.store_dir = TempDir("mode" + std::to_string(static_cast<int>(mode)));
    auto trainer = RatelTrainer::Create(&model, opts);
    ASSERT_TRUE(trainer.ok());
    Rng rng(7);
    std::vector<int64_t> ids, targets;
    for (int step = 0; step < 5; ++step) {
      MakeBatch(rng, 2 * 8, 48, &ids, &targets);
      ASSERT_TRUE((*trainer)->TrainStep(ids, targets, 2).ok());
    }
    std::vector<float> w;
    ASSERT_TRUE(
        (*trainer)->optimizer().FetchMasterParams("blk0/w_qkv", &w).ok());
    finals.push_back(std::move(w));
  }
  ASSERT_EQ(finals.size(), 3u);
  EXPECT_EQ(finals[0], finals[1]);
  EXPECT_EQ(finals[0], finals[2]);
}

TEST(RatelTrainerTest, StepStatsAccountTraffic) {
  ag::TinyGpt model(SmallConfig(), 33);
  TrainerOptions opts;
  opts.store_dir = TempDir("stats");
  auto trainer = RatelTrainer::Create(&model, opts);
  ASSERT_TRUE(trainer.ok());
  Rng rng(9);
  std::vector<int64_t> ids, targets;
  MakeBatch(rng, 8, 48, &ids, &targets);
  ASSERT_TRUE((*trainer)->TrainStep(ids, targets, 1).ok());
  const StepStats& s = (*trainer)->last_step_stats();
  const int64_t p = model.NumParameters();
  // Reads: 2P of P16 fetch + 12P of optimizer state per step.
  EXPECT_EQ(s.bytes_read, 14 * p);
  EXPECT_EQ(s.bytes_written, 14 * p);
  // The same traffic, broken down by flow class.
  EXPECT_EQ(s.xfer.Flow(FlowClass::kParamFetch).bytes_read, 2 * p);
  EXPECT_EQ(s.xfer.Flow(FlowClass::kParamFetch).bytes_written, 0);
  EXPECT_EQ(s.xfer.Flow(FlowClass::kGradState).bytes_read, 12 * p);
  EXPECT_EQ(s.xfer.Flow(FlowClass::kGradState).bytes_written, 14 * p);
  EXPECT_EQ(s.xfer.Flow(FlowClass::kActivationSpill).bytes_read, 0);
  EXPECT_EQ(s.xfer.Flow(FlowClass::kCheckpoint).bytes_read, 0);
  EXPECT_GT(s.total_s, 0.0);
  EXPECT_GE(s.total_s + 1e-9, s.fetch_s + s.compute_s + s.optimizer_s - 1e-6);
}

TEST(RatelTrainerTest, ThrottledStoreFavorsOptimizedPipeline) {
  // With a slow emulated SSD, the optimized pipeline (3 workers
  // overlapping handlers) beats the naive serial handler wall-clock:
  // with enough I/O workers to put the read and the write channel to
  // sleep concurrently, pipelined handlers overlap the two directions
  // while the naive mode strictly alternates them per tensor. Two
  // trials per mode (best-of) absorb scheduler noise on a loaded host.
  auto run = [&](GradientOffloadMode mode, int trial) {
    ag::TinyGpt model(SmallConfig(), 44);
    TrainerOptions opts;
    opts.grad_mode = mode;
    opts.store_dir = TempDir("thr" + std::to_string(static_cast<int>(mode)) +
                             "_" + std::to_string(trial));
    opts.ssd_read_bandwidth = 8e6;  // 8 MB/s emulated slow array
    opts.ssd_write_bandwidth = 8e6;
    opts.io_workers = 4;
    auto trainer = RatelTrainer::Create(&model, opts);
    EXPECT_TRUE(trainer.ok());
    Rng rng(13);
    std::vector<int64_t> ids, targets;
    MakeBatch(rng, 8, 48, &ids, &targets);
    EXPECT_TRUE((*trainer)->TrainStep(ids, targets, 1).ok());
    return (*trainer)->last_step_stats().optimizer_s;
  };
  auto best = [&](GradientOffloadMode mode) {
    return std::min(run(mode, 0), run(mode, 1));
  };
  const double naive = best(GradientOffloadMode::kNaiveActive);
  const double optimized = best(GradientOffloadMode::kOptimizedActive);
  EXPECT_LT(optimized, naive);
}

}  // namespace
}  // namespace ratel
