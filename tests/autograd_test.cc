#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <vector>

#include "autograd/ops.h"
#include "autograd/tensor.h"
#include "autograd/transformer.h"
#include "common/rng.h"

namespace ratel::ag {
namespace {

std::vector<float> RandomVec(Rng& rng, int64_t n, float scale = 1.0f) {
  std::vector<float> out(n);
  for (auto& v : out) v = static_cast<float>(rng.NextGaussian()) * scale;
  return out;
}

/// Central-difference gradient check for a few random elements of one
/// parameter tensor: `graph` rebuilds the scalar loss from the parameter.
void CheckParamGrad(const std::function<Variable(Variable&)>& graph,
                    std::vector<int64_t> shape, uint64_t seed,
                    float tol = 5e-2f) {
  Rng rng(seed);
  std::vector<float> base = RandomVec(rng, [&] {
    int64_t n = 1;
    for (auto d : shape) n *= d;
    return n;
  }());
  Variable param = Variable::Parameter(shape, base, "p");
  Variable loss = graph(param);
  ASSERT_EQ(loss.NumElements(), 1);
  loss.Backward();
  const std::vector<float> analytic = param.grad();
  ASSERT_EQ(analytic.size(), base.size());

  const float eps = 1e-2f;
  Rng pick(seed ^ 0xABCD);
  for (int probe = 0; probe < 6; ++probe) {
    const size_t i = pick.NextBelow(base.size());
    std::vector<float> plus = base, minus = base;
    plus[i] += eps;
    minus[i] -= eps;
    Variable pp = Variable::Parameter(shape, plus, "p");
    Variable pm = Variable::Parameter(shape, minus, "p");
    const float lp = graph(pp).value()[0];
    const float lm = graph(pm).value()[0];
    const float numeric = (lp - lm) / (2.0f * eps);
    EXPECT_NEAR(analytic[i], numeric,
                tol * std::max(1.0f, std::fabs(numeric)))
        << "element " << i;
  }
}

TEST(AutogradTest, MatMulGradient) {
  Rng rng(1);
  const std::vector<float> bdata = RandomVec(rng, 12);
  CheckParamGrad(
      [&](Variable& p) {
        Variable b = Variable::Constant({4, 3}, bdata);
        Variable c = MatMul(p, b);  // p is [2,4]
        return MeanSquaredError(c, std::vector<float>(6, 0.5f));
      },
      {2, 4}, 11);
}

TEST(AutogradTest, MatMulNTGradient) {
  Rng rng(2);
  const std::vector<float> bdata = RandomVec(rng, 12);
  CheckParamGrad(
      [&](Variable& p) {
        Variable b = Variable::Constant({3, 4}, bdata);  // b^T is [4,3]
        Variable c = MatMulNT(p, b);                     // [2,3]
        return MeanSquaredError(c, std::vector<float>(6, -0.2f));
      },
      {2, 4}, 12);
}

TEST(AutogradTest, MatMulNTWeightGradient) {
  Rng rng(3);
  const std::vector<float> adata = RandomVec(rng, 8);
  CheckParamGrad(
      [&](Variable& p) {  // p plays the [3,4] "embedding" role
        Variable a = Variable::Constant({2, 4}, adata);
        Variable c = MatMulNT(a, p);
        return MeanSquaredError(c, std::vector<float>(6, 0.1f));
      },
      {3, 4}, 13);
}

TEST(AutogradTest, AddBiasGradient) {
  Rng rng(4);
  const std::vector<float> adata = RandomVec(rng, 10);
  CheckParamGrad(
      [&](Variable& p) {
        Variable a = Variable::Constant({2, 5}, adata);
        return MeanSquaredError(AddBias(a, p), std::vector<float>(10, 0.0f));
      },
      {5}, 14);
}

TEST(AutogradTest, GeluGradient) {
  CheckParamGrad(
      [&](Variable& p) {
        return MeanSquaredError(Gelu(p), std::vector<float>(6, 0.3f));
      },
      {2, 3}, 15);
}

TEST(AutogradTest, LayerNormGradientWrtInput) {
  Rng rng(6);
  const std::vector<float> g = RandomVec(rng, 18, 0.5f);
  CheckParamGrad(
      [&](Variable& p) {
        Variable gamma = Variable::Constant({6}, std::vector<float>(6, 1.2f));
        Variable beta = Variable::Constant({6}, std::vector<float>(6, 0.1f));
        return MeanSquaredError(LayerNorm(p, gamma, beta), g);
      },
      {3, 6}, 16, /*tol=*/8e-2f);
}

TEST(AutogradTest, LayerNormGradientWrtGain) {
  Rng rng(7);
  const std::vector<float> x = RandomVec(rng, 12);
  CheckParamGrad(
      [&](Variable& p) {
        Variable xin = Variable::Constant({2, 6}, x);
        Variable beta = Variable::Constant({6}, std::vector<float>(6, 0.0f));
        return MeanSquaredError(LayerNorm(xin, p, beta),
                                std::vector<float>(12, 0.2f));
      },
      {6}, 17);
}

TEST(AutogradTest, AttentionGradient) {
  // qkv is [B*S, 3H] with B=1, S=4, H=6, heads=2.
  CheckParamGrad(
      [&](Variable& p) {
        Variable out = CausalSelfAttention(p, 1, 4, 2);
        return MeanSquaredError(out, std::vector<float>(24, 0.05f));
      },
      {4, 18}, 18, /*tol=*/8e-2f);
}

TEST(AutogradTest, AttentionIsCausal) {
  // Changing a future token's k/v must not affect earlier outputs.
  Rng rng(8);
  std::vector<float> qkv = RandomVec(rng, 4 * 18);
  Variable a = Variable::Constant({4, 18}, qkv);
  Variable out_a = CausalSelfAttention(a, 1, 4, 2);
  // Perturb everything belonging to the last token (row 3).
  for (int j = 0; j < 18; ++j) qkv[3 * 18 + j] += 7.0f;
  Variable b = Variable::Constant({4, 18}, qkv);
  Variable out_b = CausalSelfAttention(b, 1, 4, 2);
  for (int row = 0; row < 3; ++row) {
    for (int col = 0; col < 6; ++col) {
      EXPECT_FLOAT_EQ(out_a.value()[row * 6 + col],
                      out_b.value()[row * 6 + col])
          << row << "," << col;
    }
  }
}

TEST(AutogradTest, EmbeddingGradientScatters) {
  std::vector<float> table(5 * 3, 0.0f);
  Variable t = Variable::Parameter({5, 3}, table, "emb");
  Variable out = Embedding({1, 3, 1}, t);
  Variable loss = MeanSquaredError(out, std::vector<float>(9, 1.0f));
  loss.Backward();
  const auto& g = t.grad();
  // Rows 1 and 3 must receive gradient; others zero. Row 1 twice.
  for (int j = 0; j < 3; ++j) {
    EXPECT_NE(g[1 * 3 + j], 0.0f);
    EXPECT_NE(g[3 * 3 + j], 0.0f);
    EXPECT_EQ(g[0 * 3 + j], 0.0f);
    EXPECT_EQ(g[2 * 3 + j], 0.0f);
    EXPECT_EQ(g[4 * 3 + j], 0.0f);
    EXPECT_FLOAT_EQ(g[1 * 3 + j], 2.0f * g[3 * 3 + j]);
  }
}

TEST(AutogradTest, SoftmaxCrossEntropyGradient) {
  CheckParamGrad(
      [&](Variable& p) {  // logits [3, 4]
        return SoftmaxCrossEntropy(p, {0, 2, 3});
      },
      {3, 4}, 19);
}

TEST(AutogradTest, CrossEntropyOfUniformLogitsIsLogV) {
  Variable logits = Variable::Constant({2, 8}, std::vector<float>(16, 0.0f));
  Variable loss = SoftmaxCrossEntropy(logits, {3, 5});
  EXPECT_NEAR(loss.value()[0], std::log(8.0f), 1e-5f);
}

TEST(AutogradTest, GradAccumulatesAcrossUses) {
  // y = p + p -> dy/dp = 2.
  Variable p = Variable::Parameter({1}, {1.5f}, "p");
  Variable loss = MeanSquaredError(Add(p, p), {0.0f});
  loss.Backward();
  // d/dp (2p)^2 = 8p = 12.
  EXPECT_NEAR(p.grad()[0], 12.0f, 1e-4f);
}

// ---------- TinyGpt end-to-end ----------

TEST(TinyGptTest, ParameterInventory) {
  TinyGptConfig cfg;
  cfg.vocab_size = 64;
  cfg.seq_len = 8;
  cfg.hidden_dim = 16;
  cfg.num_heads = 2;
  cfg.num_layers = 2;
  TinyGpt model(cfg, 42);
  EXPECT_GT(model.NumParameters(), 0);
  EXPECT_EQ(model.BlockParameterNames(0).size(), 12u);
  // Deterministic construction.
  TinyGpt model2(cfg, 42);
  EXPECT_EQ(model.parameters()[0].second.value(),
            model2.parameters()[0].second.value());
}

TEST(TinyGptTest, LossIsFiniteAndNearLogV) {
  TinyGptConfig cfg;
  cfg.vocab_size = 32;
  cfg.seq_len = 8;
  cfg.hidden_dim = 16;
  cfg.num_heads = 2;
  cfg.num_layers = 1;
  TinyGpt model(cfg, 7);
  Rng rng(1);
  std::vector<int64_t> ids(16), targets(16);
  for (auto& v : ids) v = static_cast<int64_t>(rng.NextBelow(32));
  for (auto& v : targets) v = static_cast<int64_t>(rng.NextBelow(32));
  Variable loss = model.Loss(ids, targets, 2);
  EXPECT_TRUE(std::isfinite(loss.value()[0]));
  EXPECT_NEAR(loss.value()[0], std::log(32.0f), 1.0f);
}

TEST(TinyGptTest, SgdReducesLossOnFixedBatch) {
  TinyGptConfig cfg;
  cfg.vocab_size = 32;
  cfg.seq_len = 8;
  cfg.hidden_dim = 32;
  cfg.num_heads = 2;
  cfg.num_layers = 2;
  TinyGpt model(cfg, 9);
  Rng rng(2);
  std::vector<int64_t> ids(16), targets(16);
  for (auto& v : ids) v = static_cast<int64_t>(rng.NextBelow(32));
  for (auto& v : targets) v = static_cast<int64_t>(rng.NextBelow(32));

  float first = 0.0f, last = 0.0f;
  for (int step = 0; step < 30; ++step) {
    model.ZeroGrads();
    Variable loss = model.Loss(ids, targets, 2);
    loss.Backward();
    if (step == 0) first = loss.value()[0];
    last = loss.value()[0];
    for (auto& [name, p] : model.parameters()) {
      auto& val = p.mutable_value();
      const auto& g = p.grad();
      for (size_t i = 0; i < val.size(); ++i) val[i] -= 0.1f * g[i];
    }
  }
  EXPECT_LT(last, first * 0.5f) << "loss " << first << " -> " << last;
}

}  // namespace
}  // namespace ratel::ag
