#include "xfer/transfer_engine.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"

namespace ratel {
namespace {

std::string TempDir(const std::string& tag) {
  return ::testing::TempDir() + "/ratel_xfer_" + tag + "_" +
         std::to_string(::getpid());
}

Result<std::unique_ptr<TransferEngine>> OpenEngine(const std::string& tag,
                                                   int64_t cache_bytes = 0,
                                                   int workers = 2) {
  TransferOptions opts;
  opts.dir = TempDir(tag);
  opts.num_stripes = 2;
  opts.chunk_bytes = 4096;
  opts.host_cache_bytes = cache_bytes;
  opts.io_workers = workers;
  return TransferEngine::Open(opts);
}

TEST(TransferEngineTest, FlowClassMetadata) {
  EXPECT_EQ(kNumFlowClasses, 5);
  EXPECT_STREQ(FlowClassName(FlowClass::kParamFetch), "param_fetch");
  EXPECT_STREQ(FlowClassName(FlowClass::kGradState), "grad_state");
  EXPECT_STREQ(FlowClassName(FlowClass::kActivationSpill), "activation_spill");
  EXPECT_STREQ(FlowClassName(FlowClass::kCheckpoint), "checkpoint");
  EXPECT_STREQ(FlowClassName(FlowClass::kDeferredState), "deferred_state");
  // Fetch and spill traffic stalls the compute pipeline; the
  // foreground-waited grad/state stream rides the middle class so it
  // never queues FIFO behind the deferred-write backlog; checkpoint and
  // deferred-update traffic drains in the background (a deferred-tail
  // writeback must never block a param fetch or a state read).
  EXPECT_EQ(FlowPriority(FlowClass::kParamFetch),
            IoScheduler::Priority::kLatencyCritical);
  EXPECT_EQ(FlowPriority(FlowClass::kActivationSpill),
            IoScheduler::Priority::kLatencyCritical);
  EXPECT_EQ(FlowPriority(FlowClass::kGradState),
            IoScheduler::Priority::kNormal);
  EXPECT_EQ(FlowPriority(FlowClass::kCheckpoint),
            IoScheduler::Priority::kBackground);
  EXPECT_EQ(FlowPriority(FlowClass::kDeferredState),
            IoScheduler::Priority::kBackground);
}

TEST(TransferEngineTest, RoundTripPerFlowWithAccounting) {
  auto engine = OpenEngine("rt");
  ASSERT_TRUE(engine.ok());
  Rng rng(11);
  for (int i = 0; i < kNumFlowClasses; ++i) {
    const FlowClass flow = static_cast<FlowClass>(i);
    const std::string key = std::string("blob/") + FlowClassName(flow);
    std::vector<uint8_t> data(1000 + 100 * i);
    for (auto& b : data) b = static_cast<uint8_t>(rng.NextU64());
    const auto wt = (*engine)->SubmitWrite(flow, key, data.data(),
                                           static_cast<int64_t>(data.size()));
    ASSERT_TRUE((*engine)->Wait(wt).ok());
    std::vector<uint8_t> out;
    const auto rt = (*engine)->SubmitRead(flow, key, &out,
                                          static_cast<int64_t>(data.size()));
    ASSERT_TRUE((*engine)->Wait(rt).ok());
    EXPECT_EQ(out, data);
    const TransferStats snap = (*engine)->stats();
    const FlowCounters& c = snap.Flow(flow);
    EXPECT_EQ(c.reads, 1);
    EXPECT_EQ(c.writes, 1);
    EXPECT_EQ(c.bytes_read, static_cast<int64_t>(data.size()));
    EXPECT_EQ(c.bytes_written, static_cast<int64_t>(data.size()));
    EXPECT_EQ(c.errors, 0);
    EXPECT_GE(c.read_seconds, 0.0);
  }
  // No cache tier: every byte came from the store.
  const TransferStats stats = (*engine)->stats();
  EXPECT_EQ(stats.TotalBytesRead(), stats.store_bytes_read);
  EXPECT_EQ(stats.TotalBytesWritten(), stats.store_bytes_written);
  EXPECT_EQ(stats.Flow(FlowClass::kParamFetch).bytes_from_cache, 0);
}

TEST(TransferEngineTest, DramTierServesHotReads) {
  auto engine = OpenEngine("cache", /*cache_bytes=*/1 << 20);
  ASSERT_TRUE(engine.ok());
  std::vector<uint8_t> data(2048, 0x3C);
  // Write-through admits the DRAM copy at submit time, so a same-key
  // read resolves from DRAM even before the store write lands.
  const auto wt = (*engine)->SubmitWrite(FlowClass::kParamFetch, "hot",
                                         data.data(), 2048);
  std::vector<uint8_t> out;
  const auto rt =
      (*engine)->SubmitRead(FlowClass::kParamFetch, "hot", &out, 2048);
  ASSERT_TRUE((*engine)->Wait(rt).ok());
  EXPECT_EQ(out, data);
  ASSERT_TRUE((*engine)->Wait(wt).ok());
  const TransferStats stats = (*engine)->stats();
  const FlowCounters& c = stats.Flow(FlowClass::kParamFetch);
  EXPECT_EQ(c.cache_hits, 1);
  EXPECT_EQ(c.bytes_from_cache, 2048);
  EXPECT_EQ(stats.store_bytes_read, 0);  // never touched the store
  EXPECT_GT(stats.DramHitRate(), 0.99);
  // Delete drops both tiers: the key is gone everywhere.
  ASSERT_TRUE((*engine)->Delete("hot").ok());
  EXPECT_FALSE((*engine)->Contains("hot"));
}

TEST(TransferEngineTest, ColdReadPromotesIntoDram) {
  // Cache fits one blob: the second write evicts the first, making the
  // next read of "k" a genuine miss that must hit the store and then be
  // promoted back into DRAM.
  auto engine = OpenEngine("promote", /*cache_bytes=*/600);
  ASSERT_TRUE(engine.ok());
  std::vector<uint8_t> data(512, 0x7E);
  ASSERT_TRUE(
      (*engine)->Write(FlowClass::kGradState, "k", data.data(), 512).ok());
  ASSERT_TRUE((*engine)->Write(FlowClass::kGradState, "evictor", data.data(),
                               512).ok());
  const TransferStats before = (*engine)->stats();
  std::vector<uint8_t> out(512);
  ASSERT_TRUE(
      (*engine)->Read(FlowClass::kParamFetch, "k", out.data(), 512).ok());
  EXPECT_EQ(out, data);
  const TransferStats mid = (*engine)->stats();
  EXPECT_EQ(mid.Flow(FlowClass::kParamFetch).cache_misses -
                before.Flow(FlowClass::kParamFetch).cache_misses,
            1);
  EXPECT_EQ(mid.store_bytes_read - before.store_bytes_read, 512);
  // The miss promoted "k": the second read is a DRAM hit, no store I/O.
  ASSERT_TRUE(
      (*engine)->Read(FlowClass::kParamFetch, "k", out.data(), 512).ok());
  const TransferStats after = (*engine)->stats();
  EXPECT_EQ(after.Flow(FlowClass::kParamFetch).cache_hits -
                mid.Flow(FlowClass::kParamFetch).cache_hits,
            1);
  EXPECT_EQ(after.store_bytes_read, mid.store_bytes_read);
  EXPECT_GT(after.cache.evictions, 0);
}

TEST(TransferEngineTest, ErrorsSurfaceAndAreCounted) {
  auto engine = OpenEngine("err");
  ASSERT_TRUE(engine.ok());
  std::vector<uint8_t> out;
  const auto bad =
      (*engine)->SubmitRead(FlowClass::kParamFetch, "missing", &out, 64);
  EXPECT_EQ((*engine)->Wait(bad).code(), StatusCode::kNotFound);
  const TransferStats snap = (*engine)->stats();
  const FlowCounters& c = snap.Flow(FlowClass::kParamFetch);
  EXPECT_EQ(c.errors, 1);
  EXPECT_EQ(c.bytes_read, 0);  // failed reads move no bytes
  EXPECT_FALSE((*engine)->Contains("missing"));
  EXPECT_FALSE((*engine)->BlobSize("missing").ok());
}

TEST(TransferEngineTest, DeltaIsolatesAWindow) {
  auto engine = OpenEngine("delta");
  ASSERT_TRUE(engine.ok());
  std::vector<uint8_t> data(256, 1);
  ASSERT_TRUE(
      (*engine)->Write(FlowClass::kGradState, "a", data.data(), 256).ok());
  const TransferStats t0 = (*engine)->stats();
  ASSERT_TRUE(
      (*engine)->Write(FlowClass::kCheckpoint, "b", data.data(), 256).ok());
  const TransferStats d = Delta((*engine)->stats(), t0);
  EXPECT_EQ(d.Flow(FlowClass::kGradState).bytes_written, 0);
  EXPECT_EQ(d.Flow(FlowClass::kCheckpoint).bytes_written, 256);
  EXPECT_EQ(d.store_bytes_written, 256);
  EXPECT_EQ(d.TotalBytesWritten(), 256);
}

// The ISSUE's concurrency contract: 4+ threads submitting mixed flow
// classes; every ticket resolves, per-key read-after-write ordering
// holds, and the per-flow byte counters sum exactly to the store-level
// totals when reconciled with the DRAM tier.
TEST(TransferEngineTest, ConcurrentMixedFlowStress) {
  auto engine = OpenEngine("stress", /*cache_bytes=*/64 * 1024, /*workers=*/3);
  ASSERT_TRUE(engine.ok());
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 48;
  std::atomic<int64_t> submitted_write_bytes{0};
  std::atomic<int64_t> failed_reads{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Each thread owns its key space -> per-key ordering is the
      // submit order within one thread.
      Rng rng(100 + t);
      const FlowClass flow = static_cast<FlowClass>(t % kNumFlowClasses);
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::string key =
            "t" + std::to_string(t) + "/k" + std::to_string(i % 8);
        std::vector<uint8_t> data(64 + rng.NextBelow(512));
        for (auto& b : data) b = static_cast<uint8_t>(rng.NextU64());
        const auto wt = (*engine)->SubmitWrite(
            flow, key, data.data(), static_cast<int64_t>(data.size()));
        ASSERT_TRUE((*engine)->Wait(wt).ok());
        submitted_write_bytes.fetch_add(static_cast<int64_t>(data.size()));
        // Read back after the write resolved: must observe this write.
        std::vector<uint8_t> out;
        const auto rt = (*engine)->SubmitRead(
            flow, key, &out, static_cast<int64_t>(data.size()));
        const Status read = (*engine)->Wait(rt);
        ASSERT_TRUE(read.ok()) << read.ToString();
        if (out != data) failed_reads.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_TRUE((*engine)->Drain().ok());
  EXPECT_EQ(failed_reads.load(), 0);

  const TransferStats stats = (*engine)->stats();
  int64_t flow_reads = 0, flow_writes = 0;
  int64_t flow_bytes_read = 0, flow_bytes_written = 0, from_cache = 0;
  for (int i = 0; i < kNumFlowClasses; ++i) {
    const FlowCounters& c = stats.flow[i];
    flow_reads += c.reads;
    flow_writes += c.writes;
    flow_bytes_read += c.bytes_read;
    flow_bytes_written += c.bytes_written;
    from_cache += c.bytes_from_cache;
    EXPECT_EQ(c.errors, 0) << FlowClassName(static_cast<FlowClass>(i));
    EXPECT_EQ(c.cache_hits + c.cache_misses, c.reads)
        << FlowClassName(static_cast<FlowClass>(i));
    // Legacy-API traffic with the DRAM tier on copies exactly once per
    // direction: the write's staging copy, and either the hit memcpy or
    // the miss promotion on the read side. Never twice.
    EXPECT_EQ(c.bytes_copied, c.bytes_read + c.bytes_written)
        << FlowClassName(static_cast<FlowClass>(i));
    // Every legacy write still avoids one allocation: the DRAM tier
    // takes a reference to the staged buffer instead of its own copy.
    EXPECT_EQ(c.allocs_avoided, c.writes)
        << FlowClassName(static_cast<FlowClass>(i));
  }
  EXPECT_EQ(flow_reads, kThreads * kOpsPerThread);
  EXPECT_EQ(flow_writes, kThreads * kOpsPerThread);
  // Exact reconciliation against the layers below: every written byte
  // reached the store; every read byte came from the store or the DRAM
  // tier, and the cache's own hit/miss accounting agrees.
  EXPECT_EQ(flow_bytes_written, submitted_write_bytes.load());
  EXPECT_EQ(flow_bytes_written, stats.store_bytes_written);
  EXPECT_EQ(flow_bytes_read - from_cache, stats.store_bytes_read);
  EXPECT_EQ(stats.cache.hit_bytes, from_cache);
  EXPECT_EQ(stats.cache.hit_bytes + stats.cache.miss_bytes, flow_bytes_read);
}

TEST(TransferEngineTest, DrainConsumesAbandonedTickets) {
  auto engine = OpenEngine("drain");
  ASSERT_TRUE(engine.ok());
  std::vector<uint8_t> data(128, 9);
  std::vector<std::vector<uint8_t>> outs(16);
  for (int i = 0; i < 16; ++i) {
    const std::string key = "d" + std::to_string(i);
    (void)(*engine)->SubmitWrite(FlowClass::kCheckpoint, key, data.data(),
                                 128);
    (void)(*engine)->SubmitRead(FlowClass::kCheckpoint, key, &outs[i], 128);
  }
  // Never waited any ticket: Drain settles everything.
  ASSERT_TRUE((*engine)->Drain().ok());
  const TransferStats stats = (*engine)->stats();
  EXPECT_EQ(stats.Flow(FlowClass::kCheckpoint).writes, 16);
  EXPECT_EQ(stats.Flow(FlowClass::kCheckpoint).reads, 16);
  for (const auto& out : outs) EXPECT_EQ(out, data);
  // Fresh submissions still work after a drain.
  ASSERT_TRUE(
      (*engine)->Write(FlowClass::kGradState, "post", data.data(), 128).ok());
  EXPECT_TRUE((*engine)->Contains("post"));
}

// ----- Zero-copy data path (measured, not asserted) -----

// A buffer-native write publishes ONE allocation shared by the caller,
// the DRAM tier, and the store path; a same-key buffer read hands back
// a reference to that very allocation. Zero host copies end to end.
TEST(TransferEngineZeroCopyTest, BufferWritePublishesOneSharedAllocation) {
  auto engine = OpenEngine("zc_write", /*cache_bytes=*/1 << 20);
  ASSERT_TRUE(engine.ok());
  Buffer payload = (*engine)->buffer_pool().Lease(4096);
  std::memset(payload.mutable_data(), 0x5A, 4096);
  const uint8_t* published = payload.data();

  ASSERT_TRUE(
      (*engine)
          ->Wait((*engine)->SubmitWrite(FlowClass::kGradState, "zc", payload))
          .ok());
  Buffer ref;
  ASSERT_TRUE(
      (*engine)
          ->Wait((*engine)->SubmitRead(FlowClass::kGradState, "zc", &ref, 4096))
          .ok());
  EXPECT_EQ(ref.data(), published);  // the same bytes, not a copy
  EXPECT_EQ(ref.data()[4095], 0x5A);

  const TransferStats stats = (*engine)->stats();
  const FlowCounters& c = stats.Flow(FlowClass::kGradState);
  EXPECT_EQ(c.bytes_copied, 0) << "buffer-native round trip must not copy";
  // Write avoided the tier copy + the staging copy; the hit read avoided
  // the read allocation by serving a reference.
  EXPECT_EQ(c.allocs_avoided, 3);
  EXPECT_EQ(c.cache_hits, 1);
  EXPECT_EQ(stats.store_bytes_read, 0);
}

// The legacy pointer API now costs exactly ONE host copy per direction
// (it used to cost two with the DRAM tier: staging + tier admit).
TEST(TransferEngineZeroCopyTest, LegacyApiCopiesAtMostOncePerDirection) {
  auto engine = OpenEngine("zc_legacy", /*cache_bytes=*/1 << 20);
  ASSERT_TRUE(engine.ok());
  std::vector<uint8_t> data(512, 0x11);
  ASSERT_TRUE(
      (*engine)->Write(FlowClass::kParamFetch, "k", data.data(), 512).ok());
  {
    const TransferStats stats = (*engine)->stats();
    const FlowCounters& c = stats.Flow(FlowClass::kParamFetch);
    EXPECT_EQ(c.bytes_copied, 512) << "write = one staging copy, tier by ref";
    EXPECT_EQ(c.bytes_written, 512);
  }
  std::vector<uint8_t> out;
  ASSERT_TRUE(
      (*engine)
          ->Wait((*engine)->SubmitRead(FlowClass::kParamFetch, "k", &out, 512))
          .ok());
  EXPECT_EQ(out, data);
  const TransferStats stats = (*engine)->stats();
  const FlowCounters& c = stats.Flow(FlowClass::kParamFetch);
  EXPECT_EQ(c.cache_hits, 1);
  EXPECT_EQ(c.bytes_copied, c.bytes_read + c.bytes_written)
      << "one copy per direction, never two";
}

// Read() convenience on a hot key: one memcpy into the caller's raw
// pointer and nothing else (previously two: cache -> vector -> out).
TEST(TransferEngineZeroCopyTest, RawReadOnHotKeyCostsOneCopy) {
  auto engine = OpenEngine("zc_raw", /*cache_bytes=*/1 << 20);
  ASSERT_TRUE(engine.ok());
  Buffer payload = (*engine)->buffer_pool().Lease(1024);
  std::memset(payload.mutable_data(), 0x22, 1024);
  ASSERT_TRUE((*engine)
                  ->WriteBuffer(FlowClass::kActivationSpill, "hot",
                                std::move(payload))
                  .ok());
  std::vector<uint8_t> out(1024);
  ASSERT_TRUE(
      (*engine)
          ->Read(FlowClass::kActivationSpill, "hot", out.data(), 1024)
          .ok());
  EXPECT_EQ(out[1023], 0x22);
  const TransferStats stats = (*engine)->stats();
  const FlowCounters& c = stats.Flow(FlowClass::kActivationSpill);
  EXPECT_EQ(c.bytes_copied, 1024);  // exactly the final delivery memcpy
}

// A cold buffer read leases from the pool, promotes into DRAM *by
// reference*, and the next read shares that promoted allocation —
// still zero copies on the whole miss+hit sequence.
TEST(TransferEngineZeroCopyTest, ColdBufferReadPromotesByReference) {
  auto engine = OpenEngine("zc_cold", /*cache_bytes=*/600);
  ASSERT_TRUE(engine.ok());
  Buffer payload = (*engine)->buffer_pool().Lease(512);
  std::memset(payload.mutable_data(), 0x33, 512);
  ASSERT_TRUE(
      (*engine)->WriteBuffer(FlowClass::kGradState, "k", std::move(payload))
          .ok());
  // Evict "k" from the one-entry tier.
  Buffer evictor = (*engine)->buffer_pool().Lease(512);
  std::memset(evictor.mutable_data(), 0x44, 512);
  ASSERT_TRUE(
      (*engine)->WriteBuffer(FlowClass::kGradState, "other", std::move(evictor))
          .ok());
  const TransferStats before = (*engine)->stats();

  Buffer cold;
  ASSERT_TRUE(
      (*engine)
          ->Wait((*engine)->SubmitRead(FlowClass::kParamFetch, "k", &cold, 512))
          .ok());
  EXPECT_EQ(cold.data()[0], 0x33);
  Buffer hot;
  ASSERT_TRUE(
      (*engine)
          ->Wait((*engine)->SubmitRead(FlowClass::kParamFetch, "k", &hot, 512))
          .ok());
  EXPECT_EQ(hot.data(), cold.data()) << "hit must share the promoted buffer";

  const TransferStats d = Delta((*engine)->stats(), before);
  const FlowCounters& c = d.Flow(FlowClass::kParamFetch);
  EXPECT_EQ(c.cache_misses, 1);
  EXPECT_EQ(c.cache_hits, 1);
  EXPECT_EQ(c.bytes_copied, 0);
  EXPECT_EQ(c.allocs_avoided, 2);  // ref promotion + ref-served hit
}

// Steady state: re-reading and re-writing the same working set leases
// every buffer from the pool's free lists — zero pool misses (fresh
// allocations) after warmup.
TEST(TransferEngineZeroCopyTest, SteadyStatePoolMissesAreZeroAfterWarmup) {
  auto engine = OpenEngine("zc_steady", /*cache_bytes=*/1 << 20);
  ASSERT_TRUE(engine.ok());
  auto step = [&] {
    for (int i = 0; i < 4; ++i) {
      const std::string key = "w" + std::to_string(i);
      Buffer in;
      (void)(*engine)->Wait(
          (*engine)->SubmitRead(FlowClass::kGradState, key, &in, 2048));
      Buffer out = (*engine)->buffer_pool().Lease(2048);
      std::memset(out.mutable_data(), i, 2048);
      in.reset();  // release the old generation before publishing the new
      ASSERT_TRUE(
          (*engine)->WriteBuffer(FlowClass::kGradState, key, std::move(out))
              .ok());
    }
  };
  for (int warm = 0; warm < 3; ++warm) step();
  const int64_t warm_allocs = (*engine)->buffer_pool().stats().allocations;
  for (int i = 0; i < 20; ++i) step();
  EXPECT_EQ((*engine)->buffer_pool().stats().allocations, warm_allocs)
      << "movement path must run allocation-free at steady state";
}

// ----- Checked ticket lifecycle -----

TEST(TransferEngineTest, WaitOnUnknownTicketIsInvalidArgument) {
  auto engine = OpenEngine("badticket");
  ASSERT_TRUE(engine.ok());
  EXPECT_EQ((*engine)->Wait(123456).code(), StatusCode::kInvalidArgument);
}

TEST(TransferEngineTest, DoubleWaitIsInvalidArgument) {
  auto engine = OpenEngine("doublewait", /*cache_bytes=*/1 << 20);
  ASSERT_TRUE(engine.ok());
  std::vector<uint8_t> data(64, 5);
  const auto wt =
      (*engine)->SubmitWrite(FlowClass::kCheckpoint, "k", data.data(), 64);
  ASSERT_TRUE((*engine)->Wait(wt).ok());
  EXPECT_EQ((*engine)->Wait(wt).code(), StatusCode::kInvalidArgument);
  // Cache-resolved tickets are single-use too.
  std::vector<uint8_t> out;
  const auto rt = (*engine)->SubmitRead(FlowClass::kCheckpoint, "k", &out, 64);
  ASSERT_TRUE((*engine)->Wait(rt).ok());
  EXPECT_EQ((*engine)->Wait(rt).code(), StatusCode::kInvalidArgument);
}

// ----- Batched waits (the optimizer's state-read/writeback sets) -----

TEST(TransferEngineTest, WaitAllResolvesABatchAndConsumesEveryTicket) {
  auto engine = OpenEngine("waitall", /*cache_bytes=*/1 << 20);
  ASSERT_TRUE(engine.ok());
  std::vector<uint8_t> data(256, 0xAB);
  std::vector<TransferEngine::Ticket> tickets;
  for (int i = 0; i < 4; ++i) {
    tickets.push_back((*engine)->SubmitWrite(FlowClass::kGradState,
                                             "k" + std::to_string(i),
                                             data.data(), 256));
  }
  // With the DRAM tier on, the same-key reads resolve at submit time:
  // WaitAll must consume cache-resolved and inflight tickets alike.
  std::vector<std::vector<uint8_t>> outs(4);
  for (int i = 0; i < 4; ++i) {
    tickets.push_back((*engine)->SubmitRead(
        FlowClass::kGradState, "k" + std::to_string(i), &outs[i], 256));
  }
  ASSERT_TRUE((*engine)->WaitAll(tickets).ok());
  for (const auto& out : outs) EXPECT_EQ(out, data);
  // Every ticket was consumed exactly as by a per-ticket Wait.
  for (const auto t : tickets) {
    EXPECT_EQ((*engine)->Wait(t).code(), StatusCode::kInvalidArgument);
  }
  EXPECT_TRUE((*engine)->WaitAll({}).ok());
}

TEST(TransferEngineTest, WaitAllReturnsTheFirstErrorInIssueOrder) {
  auto engine = OpenEngine("waitallerr");
  ASSERT_TRUE(engine.ok());
  std::vector<uint8_t> data(64, 1);
  const auto good =
      (*engine)->SubmitWrite(FlowClass::kCheckpoint, "ok", data.data(), 64);
  std::vector<uint8_t> out;
  const auto missing =
      (*engine)->SubmitRead(FlowClass::kParamFetch, "missing", &out, 64);
  // Issue order: ok, kNotFound, kInvalidArgument — the first failure
  // wins regardless of which transfer completed first.
  const Status s = (*engine)->WaitAll({good, missing, 987654});
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  // The passing ticket was still consumed, not leaked.
  EXPECT_EQ((*engine)->Wait(good).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ((*engine)->Wait(missing).code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE((*engine)->Contains("ok"));
}

TEST(TransferEngineTest, WaitAllNeverMasksARealErrorWithTicketBookkeeping) {
  auto engine = OpenEngine("waitallmask");
  ASSERT_TRUE(engine.ok());
  std::vector<uint8_t> out;
  const auto missing =
      (*engine)->SubmitRead(FlowClass::kGradState, "missing", &out, 64);
  // A never-issued ticket EARLIER in issue order must not hide the
  // genuine store failure behind kInvalidArgument — callers (e.g. the
  // reaper's sticky epoch status) act on the I/O error.
  EXPECT_EQ((*engine)->WaitAll({424242, missing}).code(),
            StatusCode::kNotFound);
  // With no real failure in the set, the bookkeeping mistake surfaces.
  std::vector<uint8_t> data(64, 2);
  const auto good =
      (*engine)->SubmitWrite(FlowClass::kCheckpoint, "ok2", data.data(), 64);
  EXPECT_EQ((*engine)->WaitAll({424243, good}).code(),
            StatusCode::kInvalidArgument);
}

TEST(TransferEngineTest, DrainIsIdempotent) {
  auto engine = OpenEngine("redrain");
  ASSERT_TRUE(engine.ok());
  std::vector<uint8_t> data(128, 7);
  const auto t =
      (*engine)->SubmitWrite(FlowClass::kGradState, "k", data.data(), 128);
  ASSERT_TRUE((*engine)->Drain().ok());
  ASSERT_TRUE((*engine)->Drain().ok());  // drained twice: still fine
  ASSERT_TRUE((*engine)->Drain().ok());  // and on an idle engine
  // The abandoned ticket was consumed by the first drain.
  EXPECT_EQ((*engine)->Wait(t).code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE((*engine)->Contains("k"));
}

}  // namespace
}  // namespace ratel
