// Codec conformance + corruption battery (ctest label: codec).
//
// Pins the offload-codec contract at three levels: the frame format
// (round-trip exactness, CRC rejection of every single-bit flip), each
// codec's payload transform (identity, fp16 demotion, top-k sparse),
// and the TransferEngine integration (encoded-byte accounting, pooled
// frame buffers with zero steady-state allocations, the lossy-flow
// cache rule, and the planner's compression-aware SSD term).

#include "xfer/codec.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "autograd/transformer.h"
#include "common/fp16.h"
#include "common/rng.h"
#include "common/units.h"
#include "core/activation_planner.h"
#include "core/cost_model.h"
#include "hw/catalog.h"
#include "model/transformer_config.h"
#include "runtime/dataset.h"
#include "runtime/ratel_trainer.h"
#include "xfer/transfer_engine.h"

namespace ratel {
namespace {

std::string TempDir(const std::string& tag) {
  return ::testing::TempDir() + "/ratel_codec_" + tag + "_" +
         std::to_string(::getpid());
}

std::vector<uint8_t> RandomBytes(int64_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> data(n);
  for (auto& b : data) b = static_cast<uint8_t>(rng.NextU64());
  return data;
}

std::vector<float> RandomFloats(int64_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.NextGaussian());
  return v;
}

std::vector<uint8_t> EncodeToFrame(const Codec& codec,
                                   const uint8_t* src, int64_t logical) {
  std::vector<uint8_t> frame(FrameSizeFor(codec, logical));
  EncodeFrame(codec, src, logical, frame.data());
  return frame;
}

std::vector<uint8_t> AsBytes(const std::vector<float>& v) {
  std::vector<uint8_t> bytes(v.size() * sizeof(float));
  std::memcpy(bytes.data(), v.data(), bytes.size());
  return bytes;
}

// ---------- Frame format ----------

TEST(CodecFrameTest, IdentityRoundTripIsExactAcrossSizes) {
  auto codec = MakeIdentityCodec();
  // Empty, one byte, odd lengths, exact float multiples, a big blob.
  for (int64_t n : {0, 1, 3, 4, 7, 4096, 4099}) {
    const std::vector<uint8_t> data = RandomBytes(n, 100 + n);
    const std::vector<uint8_t> frame =
        EncodeToFrame(*codec, data.data(), n);
    EXPECT_EQ(static_cast<int64_t>(frame.size()),
              kCodecFrameHeaderBytes + n);
    std::vector<uint8_t> out(n, 0xCC);
    ASSERT_TRUE(
        DecodeFrame(frame.data(), frame.size(), out.data(), n).ok())
        << "n=" << n;
    EXPECT_EQ(out, data) << "n=" << n;
  }
}

TEST(CodecFrameTest, CheckFrameParsesTheHeaderItWrote) {
  auto codec = MakeFp16Codec();
  const std::vector<uint8_t> data = RandomBytes(130, 7);  // 32 floats + 2 tail
  const std::vector<uint8_t> frame =
      EncodeToFrame(*codec, data.data(), data.size());
  auto info = CheckFrame(frame.data(), frame.size());
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->codec, CodecId::kFp16);
  EXPECT_EQ(info->logical_bytes, 130);
  EXPECT_EQ(info->payload_bytes,
            static_cast<int64_t>(frame.size()) - kCodecFrameHeaderBytes);
}

TEST(CodecFrameTest, SingleBitFlipAtEveryByteOffsetIsRejected) {
  // The anti-silent-garbage guarantee: flip one bit in *every* byte of
  // a small frame — header and payload alike — and the frame must fail
  // verification with kDataLoss each time. No offset may slip through.
  auto codec = MakeIdentityCodec();
  const std::vector<uint8_t> data = RandomBytes(24, 41);
  const std::vector<uint8_t> frame =
      EncodeToFrame(*codec, data.data(), data.size());
  std::vector<uint8_t> out(data.size());
  ASSERT_TRUE(
      DecodeFrame(frame.data(), frame.size(), out.data(), data.size()).ok());

  for (size_t offset = 0; offset < frame.size(); ++offset) {
    for (int bit : {0, 3, 7}) {
      std::vector<uint8_t> corrupt = frame;
      corrupt[offset] ^= static_cast<uint8_t>(1u << bit);
      const Status s = DecodeFrame(corrupt.data(), corrupt.size(),
                                   out.data(), data.size());
      EXPECT_EQ(s.code(), StatusCode::kDataLoss)
          << "flip at byte " << offset << " bit " << bit
          << " decoded silently";
    }
  }
}

TEST(CodecFrameTest, TruncationAndWrongLogicalSizeAreRejected) {
  auto codec = MakeIdentityCodec();
  const std::vector<uint8_t> data = RandomBytes(64, 5);
  const std::vector<uint8_t> frame = EncodeToFrame(*codec, data.data(), 64);
  std::vector<uint8_t> out(64);
  // Torn prefix: every truncation point fails, including mid-header.
  for (int64_t cut : {0, 1, 16, 31, 32, 40, 95}) {
    EXPECT_EQ(DecodeFrame(frame.data(), cut, out.data(), 64).code(),
              StatusCode::kDataLoss)
        << "cut=" << cut;
  }
  // A reader expecting a different logical size must not get bytes.
  EXPECT_EQ(DecodeFrame(frame.data(), frame.size(), out.data(), 63).code(),
            StatusCode::kDataLoss);
}

// ---------- fp16 codec ----------

TEST(Fp16CodecTest, HalfRepresentableValuesRoundTripExactly) {
  auto codec = MakeFp16Codec();
  // Every value here is exactly representable in binary16, so the
  // demotion must be bit-exact after promotion back to float32.
  const std::vector<float> vals = {0.0f,   -0.0f, 1.0f,    -1.0f,  0.5f,
                                   2.0f,   1024.0f, -65504.0f, 0.25f,
                                   -0.125f, 3.5f,  0.0999755859375f};
  const std::vector<uint8_t> bytes = AsBytes(vals);
  const std::vector<uint8_t> frame =
      EncodeToFrame(*codec, bytes.data(), bytes.size());
  // 2 bytes per float + header: the advertised 2x demotion.
  EXPECT_EQ(static_cast<int64_t>(frame.size()),
            kCodecFrameHeaderBytes +
                static_cast<int64_t>(vals.size()) * 2);
  std::vector<float> out(vals.size());
  ASSERT_TRUE(DecodeFrame(frame.data(), frame.size(),
                          reinterpret_cast<uint8_t*>(out.data()),
                          bytes.size())
                  .ok());
  for (size_t i = 0; i < vals.size(); ++i) {
    EXPECT_EQ(out[i], vals[i]) << "value " << i << " not half-exact";
  }
  // Signed zero survives with its sign bit.
  EXPECT_TRUE(std::signbit(out[1]));
  EXPECT_FALSE(std::signbit(out[0]));
}

TEST(Fp16CodecTest, OddLengthTailRidesAlongVerbatim) {
  auto codec = MakeFp16Codec();
  // 5 floats + 3 trailing bytes that are not a whole float.
  std::vector<uint8_t> bytes = AsBytes({1.0f, -2.0f, 0.5f, 4.0f, -8.0f});
  bytes.push_back(0xAB);
  bytes.push_back(0xCD);
  bytes.push_back(0xEF);
  const std::vector<uint8_t> frame =
      EncodeToFrame(*codec, bytes.data(), bytes.size());
  EXPECT_EQ(static_cast<int64_t>(frame.size()),
            kCodecFrameHeaderBytes + 5 * 2 + 3);
  std::vector<uint8_t> out(bytes.size());
  ASSERT_TRUE(
      DecodeFrame(frame.data(), frame.size(), out.data(), bytes.size()).ok());
  EXPECT_EQ(out[out.size() - 3], 0xAB);
  EXPECT_EQ(out[out.size() - 2], 0xCD);
  EXPECT_EQ(out[out.size() - 1], 0xEF);
}

TEST(Fp16CodecTest, EmptyAndSingleElementTensors) {
  auto codec = MakeFp16Codec();
  {
    const std::vector<uint8_t> frame = EncodeToFrame(*codec, nullptr, 0);
    EXPECT_EQ(static_cast<int64_t>(frame.size()), kCodecFrameHeaderBytes);
    ASSERT_TRUE(DecodeFrame(frame.data(), frame.size(), nullptr, 0).ok());
  }
  {
    const float v = 0.75f;  // half-exact
    const std::vector<uint8_t> frame = EncodeToFrame(
        *codec, reinterpret_cast<const uint8_t*>(&v), sizeof(v));
    float out = 0.0f;
    ASSERT_TRUE(DecodeFrame(frame.data(), frame.size(),
                            reinterpret_cast<uint8_t*>(&out), sizeof(out))
                    .ok());
    EXPECT_EQ(out, v);
  }
}

TEST(Fp16CodecTest, MatchesScalarHalfConversionOnRandomData) {
  auto codec = MakeFp16Codec();
  const std::vector<float> vals = RandomFloats(257, 19);
  const std::vector<uint8_t> bytes = AsBytes(vals);
  const std::vector<uint8_t> frame =
      EncodeToFrame(*codec, bytes.data(), bytes.size());
  std::vector<float> out(vals.size());
  ASSERT_TRUE(DecodeFrame(frame.data(), frame.size(),
                          reinterpret_cast<uint8_t*>(out.data()),
                          bytes.size())
                  .ok());
  for (size_t i = 0; i < vals.size(); ++i) {
    // The codec is exactly FloatToHalf -> HalfToFloat, nothing fancier.
    EXPECT_EQ(out[i], HalfToFloat(FloatToHalf(vals[i]))) << i;
  }
}

// ---------- top-k codec ----------

TEST(TopKCodecTest, IndicesAreStrictlyAscendingAndInRange) {
  const int64_t k = 8;
  auto codec = MakeTopKCodec(k);
  const std::vector<float> vals = RandomFloats(100, 23);
  const std::vector<uint8_t> bytes = AsBytes(vals);
  const std::vector<uint8_t> frame =
      EncodeToFrame(*codec, bytes.data(), bytes.size());
  // Payload: k (index, value) pairs of 8 bytes each.
  EXPECT_EQ(static_cast<int64_t>(frame.size()),
            kCodecFrameHeaderBytes + k * 8);
  const uint8_t* payload = frame.data() + kCodecFrameHeaderBytes;
  uint32_t prev = 0;
  for (int64_t i = 0; i < k; ++i) {
    uint32_t index;
    std::memcpy(&index, payload + i * 8, sizeof(index));
    if (i > 0) {
      EXPECT_GT(index, prev) << "pair " << i << " not ascending";
    }
    EXPECT_LT(index, vals.size());
    prev = index;
  }
}

TEST(TopKCodecTest, DenseReconstructionKeepsLargestAndZeroFillsRest) {
  const int64_t k = 4;
  auto codec = MakeTopKCodec(k);
  // Hand-built magnitudes: the top-4 by |value| are at 1, 3, 6, 9.
  const std::vector<float> vals = {0.1f, -9.0f, 0.2f, 7.5f, -0.3f,
                                   0.4f, 8.25f, -0.5f, 0.6f, -7.75f};
  const std::vector<uint8_t> bytes = AsBytes(vals);
  const std::vector<uint8_t> frame =
      EncodeToFrame(*codec, bytes.data(), bytes.size());
  std::vector<float> out(vals.size(), 42.0f);
  ASSERT_TRUE(DecodeFrame(frame.data(), frame.size(),
                          reinterpret_cast<uint8_t*>(out.data()),
                          bytes.size())
                  .ok());
  for (size_t i = 0; i < vals.size(); ++i) {
    if (i == 1 || i == 3 || i == 6 || i == 9) {
      EXPECT_EQ(out[i], vals[i]) << "kept value " << i << " not exact";
    } else {
      EXPECT_EQ(out[i], 0.0f) << "dropped value " << i << " not zeroed";
    }
  }
}

TEST(TopKCodecTest, KLargerThanTensorKeepsEverythingExactly) {
  auto codec = MakeTopKCodec(1000);
  const std::vector<float> vals = RandomFloats(10, 31);
  const std::vector<uint8_t> bytes = AsBytes(vals);
  const std::vector<uint8_t> frame =
      EncodeToFrame(*codec, bytes.data(), bytes.size());
  // Only min(k, n) pairs are stored.
  EXPECT_EQ(static_cast<int64_t>(frame.size()),
            kCodecFrameHeaderBytes + 10 * 8);
  std::vector<float> out(vals.size());
  ASSERT_TRUE(DecodeFrame(frame.data(), frame.size(),
                          reinterpret_cast<uint8_t*>(out.data()),
                          bytes.size())
                  .ok());
  EXPECT_EQ(0, std::memcmp(out.data(), vals.data(),
                           vals.size() * sizeof(float)));
}

TEST(TopKCodecTest, EmptySingleElementAndOddLengthTensors) {
  auto codec = MakeTopKCodec(3);
  {
    const std::vector<uint8_t> frame = EncodeToFrame(*codec, nullptr, 0);
    ASSERT_TRUE(DecodeFrame(frame.data(), frame.size(), nullptr, 0).ok());
  }
  {
    const float v = -2.5f;
    const std::vector<uint8_t> frame = EncodeToFrame(
        *codec, reinterpret_cast<const uint8_t*>(&v), sizeof(v));
    float out = 0.0f;
    ASSERT_TRUE(DecodeFrame(frame.data(), frame.size(),
                            reinterpret_cast<uint8_t*>(&out), sizeof(out))
                    .ok());
    EXPECT_EQ(out, v);  // 1 element, k=3: kept exactly
  }
  {
    // 2 floats + 1 tail byte; tail must survive even with k pruning.
    std::vector<uint8_t> bytes = AsBytes({5.0f, -0.001f});
    bytes.push_back(0x5A);
    const std::vector<uint8_t> frame =
        EncodeToFrame(*codec, bytes.data(), bytes.size());
    std::vector<uint8_t> out(bytes.size());
    ASSERT_TRUE(DecodeFrame(frame.data(), frame.size(), out.data(),
                            bytes.size())
                    .ok());
    EXPECT_EQ(out.back(), 0x5A);
    float f0, f1;
    std::memcpy(&f0, out.data(), 4);
    std::memcpy(&f1, out.data() + 4, 4);
    EXPECT_EQ(f0, 5.0f);
    EXPECT_EQ(f1, -0.001f);
  }
}

// ---------- Spec parsing, registry, env overlay ----------

TEST(CodecSpecTest, RawSpecsYieldNoCodec) {
  for (const char* spec : {"", "raw", "off", "none"}) {
    auto codec = MakeCodec(spec);
    ASSERT_TRUE(codec.ok()) << spec;
    EXPECT_EQ(*codec, nullptr) << spec;
  }
}

TEST(CodecSpecTest, NamedSpecsYieldTheRightCodec) {
  auto identity = MakeCodec("identity");
  ASSERT_TRUE(identity.ok());
  ASSERT_NE(*identity, nullptr);
  EXPECT_EQ((*identity)->id(), CodecId::kIdentity);
  EXPECT_TRUE((*identity)->lossless());

  auto fp16 = MakeCodec("fp16");
  ASSERT_TRUE(fp16.ok());
  ASSERT_NE(*fp16, nullptr);
  EXPECT_EQ((*fp16)->id(), CodecId::kFp16);
  EXPECT_FALSE((*fp16)->lossless());

  auto topk = MakeCodec("topk:16");
  ASSERT_TRUE(topk.ok());
  ASSERT_NE(*topk, nullptr);
  EXPECT_EQ((*topk)->id(), CodecId::kTopK);
  EXPECT_FALSE((*topk)->lossless());
}

TEST(CodecSpecTest, BadSpecsAreInvalidArgument) {
  for (const char* spec :
       {"gzip", "topk", "topk:", "topk:0", "topk:-3", "topk:abc",
        "identity "}) {
    auto codec = MakeCodec(spec);
    EXPECT_FALSE(codec.ok()) << spec;
    EXPECT_EQ(codec.status().code(), StatusCode::kInvalidArgument) << spec;
  }
}

TEST(CodecSpecTest, RegistryCreateNamesTheBadFlow) {
  CodecConfig config;
  config.spec(FlowClass::kGradState) = "topk:0";
  auto registry = CodecRegistry::Create(config);
  ASSERT_FALSE(registry.ok());
  EXPECT_EQ(registry.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(registry.status().message().find("grad_state"),
            std::string::npos)
      << registry.status().message();
}

TEST(CodecSpecTest, EnvKnobsOverlayOntoBaseConfig) {
  ::setenv("RATEL_CODEC_ACTIVATION_SPILL", "fp16", 1);
  ::setenv("RATEL_CODEC_GRAD_STATE", "topk:32", 1);
  CodecConfig base;
  base.spec(FlowClass::kCheckpoint) = "identity";  // no knob: must survive
  const CodecConfig cfg = CodecConfig::FromEnv(base);
  ::unsetenv("RATEL_CODEC_ACTIVATION_SPILL");
  ::unsetenv("RATEL_CODEC_GRAD_STATE");

  EXPECT_EQ(cfg.spec(FlowClass::kActivationSpill), "fp16");
  EXPECT_EQ(cfg.spec(FlowClass::kGradState), "topk:32");
  EXPECT_EQ(cfg.spec(FlowClass::kCheckpoint), "identity");
  EXPECT_EQ(cfg.spec(FlowClass::kParamFetch), "");
  EXPECT_TRUE(cfg.any());
  EXPECT_FALSE(CodecConfig{}.any());
}

TEST(CodecSpecTest, ExpectedCompressionRatioMatchesFrameSizes) {
  auto fp16 = MakeFp16Codec();
  // Big blob: ratio approaches 2x; the 32-byte header is the only drag.
  const int64_t big = 1 << 20;
  EXPECT_NEAR(ExpectedCompressionRatio(*fp16, big), 2.0, 0.01);
  EXPECT_DOUBLE_EQ(
      ExpectedCompressionRatio(*fp16, big),
      static_cast<double>(big) /
          static_cast<double>(FrameSizeFor(*fp16, big)));
  // Tiny blob: framing overhead can push the ratio below 1.
  EXPECT_LT(ExpectedCompressionRatio(*fp16, 8), 1.0);
  EXPECT_DOUBLE_EQ(ExpectedCompressionRatio(*fp16, 0), 1.0);
}

// ---------- Engine integration ----------

TransferOptions EngineOptions(const std::string& dir) {
  TransferOptions opts;
  opts.dir = dir;
  opts.num_stripes = 4;
  opts.chunk_bytes = 4096;
  opts.io_workers = 2;
  return opts;
}

TEST(CodecEngineTest, OpenRejectsBadCodecSpec) {
  TransferOptions opts = EngineOptions(TempDir("badspec"));
  opts.codec.spec(FlowClass::kActivationSpill) = "lz4";
  auto engine = TransferEngine::Open(opts);
  EXPECT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kInvalidArgument);
}

TEST(CodecEngineTest, IdentityCodecRoundTripsWithFrameAccounting) {
  TransferOptions opts = EngineOptions(TempDir("id_acct"));
  opts.codec.spec(FlowClass::kCheckpoint) = "identity";
  auto engine = TransferEngine::Open(opts);
  ASSERT_TRUE(engine.ok());

  const int64_t kBytes = 3 * 4096 + 17;
  const int kBlobs = 4;
  auto identity = MakeIdentityCodec();
  const int64_t frame_bytes = FrameSizeFor(*identity, kBytes);
  for (int i = 0; i < kBlobs; ++i) {
    const std::vector<uint8_t> data = RandomBytes(kBytes, 500 + i);
    const std::string key = "ck/" + std::to_string(i);
    ASSERT_TRUE(
        (*engine)->Write(FlowClass::kCheckpoint, key, data.data(), kBytes)
            .ok());
    std::vector<uint8_t> out(kBytes);
    ASSERT_TRUE(
        (*engine)->Read(FlowClass::kCheckpoint, key, out.data(), kBytes)
            .ok());
    EXPECT_EQ(out, data) << "blob " << i;
  }

  const TransferStats stats = (*engine)->stats();
  const FlowCounters& c = stats.Flow(FlowClass::kCheckpoint);
  // Logical counters stay logical; encoded counters carry the framing.
  EXPECT_EQ(c.bytes_written, kBlobs * kBytes);
  EXPECT_EQ(c.bytes_read, kBlobs * kBytes);
  EXPECT_EQ(c.encoded_bytes_written, kBlobs * frame_bytes);
  EXPECT_EQ(c.encoded_bytes_read, kBlobs * frame_bytes);
  EXPECT_EQ(c.encodes, kBlobs);
  EXPECT_EQ(c.decodes, kBlobs);
  EXPECT_EQ(c.decode_failures, 0);
  EXPECT_EQ(c.errors, 0);
  // Identity framing *adds* header bytes: ratio just under 1 — and it
  // reconciles exactly against the raw counters.
  EXPECT_DOUBLE_EQ(c.WriteCompressionRatio(),
                   static_cast<double>(c.bytes_written) /
                       static_cast<double>(c.encoded_bytes_written));
  // The store saw frames, not logical blobs.
  EXPECT_EQ(stats.store_bytes_written, kBlobs * frame_bytes);
  EXPECT_EQ(stats.store_bytes_read, kBlobs * frame_bytes);
}

TEST(CodecEngineTest, Fp16FlowHalvesStoreBytes) {
  TransferOptions opts = EngineOptions(TempDir("fp16_bytes"));
  opts.codec.spec(FlowClass::kActivationSpill) = "fp16";
  auto engine = TransferEngine::Open(opts);
  ASSERT_TRUE(engine.ok());

  const int64_t kFloats = 4096;
  const int64_t kBytes = kFloats * 4;
  const std::vector<float> vals = RandomFloats(kFloats, 77);
  ASSERT_TRUE((*engine)
                  ->Write(FlowClass::kActivationSpill, "act", vals.data(),
                          kBytes)
                  .ok());
  std::vector<float> out(kFloats);
  ASSERT_TRUE(
      (*engine)->Read(FlowClass::kActivationSpill, "act", out.data(), kBytes)
          .ok());
  // The reader observes exactly the demoted values.
  for (int64_t i = 0; i < kFloats; ++i) {
    ASSERT_EQ(out[i], HalfToFloat(FloatToHalf(vals[i]))) << i;
  }

  const TransferStats stats = (*engine)->stats();
  const FlowCounters& c = stats.Flow(FlowClass::kActivationSpill);
  EXPECT_EQ(c.bytes_written, kBytes);
  EXPECT_EQ(c.encoded_bytes_written, kBytes / 2 + kCodecFrameHeaderBytes);
  EXPECT_GT(c.WriteCompressionRatio(), 1.9);
  EXPECT_GT(c.encode_seconds, 0.0);
  EXPECT_GT(c.decode_seconds, 0.0);
}

TEST(CodecEngineTest, LossyCodecSkipsWriteSideCacheAdmit) {
  // The lossy cache rule: a reader must observe decode(encode(x)) no
  // matter whether the blob was still DRAM-resident — so the write-side
  // admit is skipped for lossy codecs and the first read is a store
  // miss. The decoded bytes may then be promoted (re-reading them is
  // consistent), making the *second* read a hit with identical bytes.
  TransferOptions opts = EngineOptions(TempDir("lossy_cache"));
  opts.host_cache_bytes = 1 << 20;
  opts.codec.spec(FlowClass::kActivationSpill) = "fp16";
  auto engine = TransferEngine::Open(opts);
  ASSERT_TRUE(engine.ok());

  const int64_t kFloats = 512;
  const int64_t kBytes = kFloats * 4;
  const std::vector<float> vals = RandomFloats(kFloats, 91);
  ASSERT_TRUE((*engine)
                  ->Write(FlowClass::kActivationSpill, "act", vals.data(),
                          kBytes)
                  .ok());

  std::vector<float> first(kFloats), second(kFloats);
  ASSERT_TRUE((*engine)
                  ->Read(FlowClass::kActivationSpill, "act", first.data(),
                         kBytes)
                  .ok());
  ASSERT_TRUE((*engine)
                  ->Read(FlowClass::kActivationSpill, "act", second.data(),
                         kBytes)
                  .ok());
  const TransferStats stats = (*engine)->stats();
  const FlowCounters& c = stats.Flow(FlowClass::kActivationSpill);
  EXPECT_EQ(c.cache_misses, 1);  // write-side admit was skipped
  EXPECT_EQ(c.cache_hits, 1);    // promotion-after-decode served read 2
  for (int64_t i = 0; i < kFloats; ++i) {
    const float expect = HalfToFloat(FloatToHalf(vals[i]));
    ASSERT_EQ(first[i], expect) << i;
    ASSERT_EQ(second[i], expect) << i;
  }

  // Contrast: a *lossless* framed flow still admits at write time.
  const std::vector<uint8_t> blob = RandomBytes(kBytes, 92);
  TransferOptions opts2 = EngineOptions(TempDir("lossless_cache"));
  opts2.host_cache_bytes = 1 << 20;
  opts2.codec.spec(FlowClass::kCheckpoint) = "identity";
  auto engine2 = TransferEngine::Open(opts2);
  ASSERT_TRUE(engine2.ok());
  ASSERT_TRUE(
      (*engine2)->Write(FlowClass::kCheckpoint, "ck", blob.data(), kBytes)
          .ok());
  std::vector<uint8_t> out(kBytes);
  ASSERT_TRUE(
      (*engine2)->Read(FlowClass::kCheckpoint, "ck", out.data(), kBytes)
          .ok());
  EXPECT_EQ(out, blob);
  const TransferStats stats2 = (*engine2)->stats();
  EXPECT_EQ(stats2.Flow(FlowClass::kCheckpoint).cache_hits, 1);
}

TEST(CodecEngineTest, LossyOverwriteInvalidatesThePromotedCacheEntry) {
  // The other half of the lossy cache rule: reading a lossy key
  // promotes its *decoded* bytes into the DRAM tier, so overwriting
  // that key must invalidate the promoted entry — otherwise every
  // later read would serve the previous value from DRAM. This is
  // exactly the trainer's spill pattern: the same "act/i" keys are
  // rewritten every step and read back within the step.
  TransferOptions opts = EngineOptions(TempDir("lossy_overwrite"));
  opts.host_cache_bytes = 1 << 20;
  opts.codec.spec(FlowClass::kActivationSpill) = "fp16";
  auto engine = TransferEngine::Open(opts);
  ASSERT_TRUE(engine.ok());

  const int64_t kFloats = 512;
  const int64_t kBytes = kFloats * 4;
  std::vector<float> out(kFloats);
  for (int step = 0; step < 3; ++step) {
    const std::vector<float> vals = RandomFloats(kFloats, 700 + step);
    ASSERT_TRUE((*engine)
                    ->Write(FlowClass::kActivationSpill, "act", vals.data(),
                            kBytes)
                    .ok());
    // Read twice: the first decodes this step's frame from the store
    // (the overwrite dropped the previous step's promoted entry), the
    // second may hit the fresh promotion — both must deliver *this*
    // step's demoted values.
    for (int pass = 0; pass < 2; ++pass) {
      SCOPED_TRACE("step " + std::to_string(step) + " pass " +
                   std::to_string(pass));
      ASSERT_TRUE((*engine)
                      ->Read(FlowClass::kActivationSpill, "act", out.data(),
                             kBytes)
                      .ok());
      for (int64_t i = 0; i < kFloats; ++i) {
        ASSERT_EQ(out[i], HalfToFloat(FloatToHalf(vals[i]))) << i;
      }
    }
  }
  const TransferStats stats = (*engine)->stats();
  const FlowCounters& c = stats.Flow(FlowClass::kActivationSpill);
  EXPECT_EQ(c.cache_misses, 3);  // one store decode per overwrite
  EXPECT_EQ(c.cache_hits, 3);    // one promoted hit per overwrite
  EXPECT_EQ(c.decodes, 3);
}

TEST(CodecEngineTest, PooledFrameBuffersReachZeroSteadyStateAllocs) {
  // The zero-copy acceptance criterion extended to codec frames: after
  // a warmup round populates the pool's size classes, further codec
  // writes and reads lease every frame and every decode destination
  // from the free lists — the allocation counter must not move.
  TransferOptions opts = EngineOptions(TempDir("pool"));
  opts.codec.spec(FlowClass::kActivationSpill) = "fp16";
  auto engine = TransferEngine::Open(opts);
  ASSERT_TRUE(engine.ok());

  const int64_t kBytes = 16 * 1024;
  std::vector<uint8_t> data = RandomBytes(kBytes, 11);
  std::vector<uint8_t> out(kBytes);
  auto round = [&](int i) {
    const std::string key = "act/" + std::to_string(i % 2);
    ASSERT_TRUE((*engine)
                    ->Write(FlowClass::kActivationSpill, key, data.data(),
                            kBytes)
                    .ok());
    ASSERT_TRUE((*engine)
                    ->Read(FlowClass::kActivationSpill, key, out.data(),
                           kBytes)
                    .ok());
  };
  for (int i = 0; i < 4; ++i) round(i);  // warmup: classes populate
  ASSERT_TRUE((*engine)->Drain().ok());
  const BufferPool::Stats warm = (*engine)->buffer_pool().stats();
  for (int i = 0; i < 16; ++i) round(i);
  ASSERT_TRUE((*engine)->Drain().ok());
  const BufferPool::Stats steady = (*engine)->buffer_pool().stats();
  EXPECT_EQ(steady.allocations, warm.allocations)
      << "codec path allocated in steady state";
  EXPECT_GT(steady.reuses, warm.reuses);
}

TEST(CodecEngineTest, BufferReadOverloadDecodesThroughTheCodecPath) {
  TransferOptions opts = EngineOptions(TempDir("bufread"));
  opts.codec.spec(FlowClass::kGradState) = "identity";
  auto engine = TransferEngine::Open(opts);
  ASSERT_TRUE(engine.ok());
  const int64_t kBytes = 2048;
  const std::vector<uint8_t> data = RandomBytes(kBytes, 13);
  ASSERT_TRUE(
      (*engine)->Write(FlowClass::kGradState, "g", data.data(), kBytes).ok());
  auto buf = (*engine)->ReadBuffer(FlowClass::kGradState, "g", kBytes);
  ASSERT_TRUE(buf.ok());
  ASSERT_EQ(buf->size(), kBytes);
  EXPECT_EQ(0, std::memcmp(buf->data(), data.data(), kBytes));
  // Zero-copy delivery: the Buffer overload hands the decoded buffer
  // out by reference, so no payload memcpy is charged to the flow.
  const TransferStats stats = (*engine)->stats();
  const FlowCounters& c = stats.Flow(FlowClass::kGradState);
  EXPECT_EQ(c.decodes, 1);
  EXPECT_EQ(c.decode_failures, 0);
}

// ---------- Planner integration ----------

TEST(CodecPlannerTest, CompressionRatioShrinksTheSsdTermOnly) {
  auto cfg = LlmFromTableIV("13B");
  ASSERT_TRUE(cfg.ok());
  const WorkloadProfile wl = WorkloadProfile::Build(*cfg, 32);
  const ServerConfig server =
      catalog::EvaluationServer(catalog::Rtx4090(), 768 * kGiB, 12);
  auto hw = HardwareProfiler(server).Profile(wl);
  ASSERT_TRUE(hw.ok());
  CostModel cm(*hw, wl);

  const double overflow = static_cast<double>(hw->mem_avail_m) + 8e9;
  ASSERT_DOUBLE_EQ(cm.SsdActivationBytes(overflow), 8e9);
  cm.SetActivationCompressionRatio(2.0);
  EXPECT_DOUBLE_EQ(cm.SsdActivationBytes(overflow), 4e9);
  // Below the memory watermark nothing spills either way.
  EXPECT_DOUBLE_EQ(cm.SsdActivationBytes(1.0), 0.0);
  EXPECT_DOUBLE_EQ(cm.activation_compression_ratio(), 2.0);
}

TEST(CodecPlannerTest, PlannerSwapsAtLeastAsMuchUnderCompression) {
  // Halving the SSD leg of the spill flow can only make swapping
  // cheaper: Algorithm 1's inflection point moves to swap >= as many
  // activation bytes, and the predicted iteration time cannot get
  // worse. On a memory-tight profile the SSD term binds, so the plan
  // actually changes.
  auto cfg = LlmFromTableIV("30B");
  ASSERT_TRUE(cfg.ok());
  const WorkloadProfile wl = WorkloadProfile::Build(*cfg, 32);
  const ServerConfig server =
      catalog::EvaluationServer(catalog::Rtx4090(), 256 * kGiB, 2);
  auto hw = HardwareProfiler(server).Profile(wl);
  ASSERT_TRUE(hw.ok());

  CostModel raw(*hw, wl);
  const ActivationPlan plan_raw = ActivationPlanner(raw).Plan();

  CostModel compressed(*hw, wl);
  auto fp16 = MakeFp16Codec();
  compressed.SetActivationCompressionRatio(
      ExpectedCompressionRatio(*fp16, 64 << 20));
  const ActivationPlan plan_fp16 = ActivationPlanner(compressed).Plan();

  EXPECT_GE(plan_fp16.a_g2m, plan_raw.a_g2m);
  EXPECT_LE(plan_fp16.predicted_iter_time,
            plan_raw.predicted_iter_time + 1e-9);
  // Algorithm 1 still matches the exhaustive reference under the
  // modified cost surface (convexity is preserved by a constant
  // positive scale on one max() term).
  const ActivationPlan exhaustive =
      ActivationPlanner(compressed).PlanByExhaustiveSearch();
  EXPECT_EQ(plan_fp16.a_g2m, exhaustive.a_g2m);
}

// ---------- Trainer lossy-flow rule ----------

TEST(CodecTrainerTest, LossyCodecRejectedOffTheActivationFlow) {
  ag::TinyGptConfig cfg;
  cfg.vocab_size = 32;
  cfg.seq_len = 8;
  cfg.hidden_dim = 16;
  cfg.num_heads = 2;
  cfg.num_layers = 2;
  ag::TinyGpt model(cfg, 71);
  TrainerOptions opts;
  opts.store_dir = TempDir("lossy_rule");
  opts.codec.spec(FlowClass::kGradState) = "fp16";
  auto trainer = RatelTrainer::Create(&model, opts);
  ASSERT_FALSE(trainer.ok());
  EXPECT_EQ(trainer.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(trainer.status().message().find("grad_state"),
            std::string::npos);
}

TEST(CodecTrainerTest, LossyCodecAcceptedOnActivationSpillAndTrains) {
  ag::TinyGptConfig cfg;
  cfg.vocab_size = 32;
  cfg.seq_len = 8;
  cfg.hidden_dim = 16;
  cfg.num_heads = 2;
  cfg.num_layers = 2;
  ag::TinyGpt model(cfg, 72);
  TrainerOptions opts;
  opts.store_dir = TempDir("lossy_ok");
  opts.spill_activations = true;
  opts.codec.spec(FlowClass::kActivationSpill) = "fp16";
  auto trainer = RatelTrainer::Create(&model, opts);
  ASSERT_TRUE(trainer.ok()) << trainer.status().message();
  SyntheticDataset ds(SyntheticTask::kAffineMap, 32, 8, 12);
  const TokenBatch b = ds.NextBatch(2);
  auto loss = (*trainer)->TrainStep(b.ids, b.targets, 2);
  ASSERT_TRUE(loss.ok());
  EXPECT_TRUE(std::isfinite(*loss));
  // The spill flow really went through the codec.
  const TransferStats stats = (*trainer)->transfer_stats();
  const FlowCounters& c = stats.Flow(FlowClass::kActivationSpill);
  EXPECT_GT(c.encodes, 0);
  EXPECT_GT(c.decodes, 0);
  EXPECT_GT(c.WriteCompressionRatio(), 1.0);
}

}  // namespace
}  // namespace ratel
