#include "core/cost_model.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>
#include <vector>

#include "common/units.h"
#include "core/hardware_profile.h"
#include "hw/catalog.h"
#include "model/tensor_inventory.h"
#include "model/transformer_config.h"

namespace ratel {
namespace {

HardwareProfile ProfileFor(const std::string& model, int batch,
                           int64_t main_mem_gib = 768, int ssds = 12) {
  auto cfg = LlmFromTableIV(model);
  EXPECT_TRUE(cfg.ok());
  const WorkloadProfile wl = WorkloadProfile::Build(*cfg, batch);
  const ServerConfig server = catalog::EvaluationServer(
      catalog::Rtx4090(), main_mem_gib * kGiB, ssds);
  auto hp = HardwareProfiler(server).Profile(wl);
  EXPECT_TRUE(hp.ok()) << hp.status().ToString();
  return *hp;
}

TEST(HardwareProfilerTest, ProvidesTableIQuantities) {
  auto cfg = LlmFromTableIV("13B");
  ASSERT_TRUE(cfg.ok());
  const WorkloadProfile wl = WorkloadProfile::Build(*cfg, 32);
  const ServerConfig server =
      catalog::EvaluationServer(catalog::Rtx4090(), 768 * kGiB, 12);
  auto hp = HardwareProfiler(server).Profile(wl);
  ASSERT_TRUE(hp.ok());
  EXPECT_NEAR(hp->thp_g, 165e12, 1e10);
  EXPECT_NEAR(hp->bw_g, 21e9, 1e7);
  EXPECT_NEAR(hp->bw_s2m, 32e9, 1e9);   // 12 SSDs capped by the bridge
  EXPECT_GT(hp->mem_avail_m, 0);
  EXPECT_EQ(hp->layer_forward_seconds.size(), 40u);
  EXPECT_GT(hp->t_f, 0.0);
  EXPECT_GT(hp->t_b, hp->t_f);  // backward is ~2x forward + recompute
}

TEST(HardwareProfilerTest, FailsWhenPinnedExceedsMainMemory) {
  auto cfg = LlmFromTableIV("276B");
  ASSERT_TRUE(cfg.ok());
  const WorkloadProfile wl = WorkloadProfile::Build(*cfg, 1);
  const ServerConfig server =
      catalog::EvaluationServer(catalog::Rtx4090(), 128 * kGiB, 12);
  auto hp = HardwareProfiler(server).Profile(wl);
  EXPECT_FALSE(hp.ok());
  EXPECT_EQ(hp.status().code(), StatusCode::kOutOfMemory);
}

TEST(HardwareProfilerTest, FailsWithoutSsds) {
  auto cfg = LlmFromTableIV("6B");
  ASSERT_TRUE(cfg.ok());
  const WorkloadProfile wl = WorkloadProfile::Build(*cfg, 1);
  const ServerConfig server =
      catalog::EvaluationServer(catalog::Rtx4090(), 256 * kGiB, 0);
  EXPECT_FALSE(HardwareProfiler(server).Profile(wl).ok());
}

TEST(CostModelTest, SsdSpillFollowsEq3) {
  auto cfg = LlmFromTableIV("13B");
  ASSERT_TRUE(cfg.ok());
  const WorkloadProfile wl = WorkloadProfile::Build(*cfg, 32);
  const HardwareProfile hw = ProfileFor("13B", 32);
  const CostModel cm(hw, wl);
  EXPECT_DOUBLE_EQ(cm.SsdActivationBytes(0.0), 0.0);
  EXPECT_DOUBLE_EQ(
      cm.SsdActivationBytes(static_cast<double>(hw.mem_avail_m)), 0.0);
  EXPECT_DOUBLE_EQ(
      cm.SsdActivationBytes(static_cast<double>(hw.mem_avail_m) + 5e9), 5e9);
}

TEST(CostModelTest, ForwardTimeComponentsDominateCorrectly) {
  auto cfg = LlmFromTableIV("13B");
  ASSERT_TRUE(cfg.ok());
  const WorkloadProfile wl = WorkloadProfile::Build(*cfg, 32);
  const HardwareProfile hw = ProfileFor("13B", 32);
  const CostModel cm(hw, wl);
  // With nothing swapped, forward is GPU-bound for 13B/bsz32:
  // FLOP_f / THP_G ~ 5.3 s (Fig. 1c shows a 5 s forward stage).
  const double t0 = cm.ForwardTime(0.0);
  EXPECT_NEAR(t0, wl.forward_flops() / hw.thp_g, 1e-9);
  EXPECT_NEAR(t0, 5.3, 0.8);
  // Swapping everything makes the G2M link the forward bottleneck.
  const double a_all = static_cast<double>(wl.total_activation_bytes());
  EXPECT_GT(cm.ForwardTime(a_all), t0);
  EXPECT_NEAR(cm.ForwardTime(a_all),
              std::max(a_all / hw.bw_g,
                       2.0 * wl.param_count() / hw.bw_s2m +
                           cm.SsdActivationBytes(a_all) / hw.bw_m2s),
              0.5);
}

TEST(CostModelTest, BackwardTimeIncludesModelStateTraffic) {
  auto cfg = LlmFromTableIV("13B");
  ASSERT_TRUE(cfg.ok());
  const WorkloadProfile wl = WorkloadProfile::Build(*cfg, 32);
  const HardwareProfile hw = ProfileFor("13B", 32);
  const CostModel cm(hw, wl);
  // SSD term: 14P read + 14P write at the array bandwidths must be a
  // lower bound on the backward stage (Eq. 5's last component).
  const double p14 = 14.0 * static_cast<double>(wl.param_count());
  const double ssd_floor = p14 / hw.bw_s2m + p14 / hw.bw_m2s;
  EXPECT_GE(cm.BackwardTime(0.0, 0.0) + 1e-9, ssd_floor);
}

TEST(CostModelTest, RecomputeFlopsMonotoneNonIncreasing) {
  auto cfg = LlmFromTableIV("13B");
  ASSERT_TRUE(cfg.ok());
  const WorkloadProfile wl = WorkloadProfile::Build(*cfg, 16);
  const HardwareProfile hw = ProfileFor("13B", 16);
  const CostModel cm(hw, wl);
  double prev = cm.RecomputeFlopsAt(0.0);
  EXPECT_NEAR(prev, cm.TotalRecomputableFlops(), 1e-3 * prev);
  const double a_all = static_cast<double>(wl.total_activation_bytes());
  for (int i = 1; i <= 64; ++i) {
    const double a = a_all * i / 64.0;
    const double fr = cm.RecomputeFlopsAt(a);
    EXPECT_LE(fr, prev + 1e-3) << i;
    prev = fr;
  }
  EXPECT_NEAR(cm.RecomputeFlopsAt(a_all), 0.0, 1e-3);
}

// ---------- Convexity property sweep (the Section IV-D proof) ----------

using ConvexityParam = std::tuple<const char*, int, int64_t>;

class ConvexityTest : public ::testing::TestWithParam<ConvexityParam> {};

TEST_P(ConvexityTest, IterTimeIsConvexInSwappedBytes) {
  const auto [model, batch, mem_gib] = GetParam();
  auto cfg = LlmFromTableIV(model);
  ASSERT_TRUE(cfg.ok());
  const WorkloadProfile wl = WorkloadProfile::Build(*cfg, batch);
  const ServerConfig server = catalog::EvaluationServer(
      catalog::Rtx4090(), mem_gib * kGiB, 12);
  auto hp = HardwareProfiler(server).Profile(wl);
  ASSERT_TRUE(hp.ok()) << hp.status().ToString();
  const CostModel cm(*hp, wl);

  // Sample T_iter on a uniform grid over the feasible domain
  // [A_interBlock, A_all] (the checkpoints are always swapped) and check
  // discrete convexity: second differences >= -epsilon.
  constexpr int kPoints = 200;
  const double a_lo =
      static_cast<double>(wl.inter_block_activation_bytes());
  const double a_all = static_cast<double>(wl.total_activation_bytes());
  std::vector<double> t(kPoints);
  for (int i = 0; i < kPoints; ++i) {
    t[i] = cm.IterTimeAt(a_lo + (a_all - a_lo) * i / (kPoints - 1));
  }
  for (int i = 1; i + 1 < kPoints; ++i) {
    const double second_diff = t[i + 1] - 2.0 * t[i] + t[i - 1];
    EXPECT_GE(second_diff, -1e-6 * t[i])
        << "non-convex at grid point " << i << " for " << model << "/b"
        << batch;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ModelsAndBatches, ConvexityTest,
    ::testing::Values(
        ConvexityParam{"6B", 8, 256}, ConvexityParam{"6B", 64, 128},
        ConvexityParam{"13B", 16, 256}, ConvexityParam{"13B", 32, 768},
        ConvexityParam{"13B", 64, 128}, ConvexityParam{"30B", 24, 256},
        ConvexityParam{"70B", 16, 512}, ConvexityParam{"70B", 32, 256},
        ConvexityParam{"135B", 8, 768}, ConvexityParam{"175B", 8, 768}),
    [](const ::testing::TestParamInfo<ConvexityParam>& info) {
      return std::string(std::get<0>(info.param)) + "_b" +
             std::to_string(std::get<1>(info.param)) + "_m" +
             std::to_string(std::get<2>(info.param));
    });

TEST(CostModelTest, IterTimeMatchesPaperScaleFor13B) {
  // Fig. 1c: Ratel runs 13B/bsz32 in roughly 25 s (5 s forward + 20 s
  // backward) on the 12-SSD server. The model should land in that
  // neighbourhood at its optimum.
  auto cfg = LlmFromTableIV("13B");
  ASSERT_TRUE(cfg.ok());
  const WorkloadProfile wl = WorkloadProfile::Build(*cfg, 32);
  const HardwareProfile hw = ProfileFor("13B", 32);
  const CostModel cm(hw, wl);
  double best = 1e30;
  const double a_all = static_cast<double>(wl.total_activation_bytes());
  for (int i = 0; i <= 100; ++i) {
    best = std::min(best, cm.IterTimeAt(a_all * i / 100.0));
  }
  EXPECT_GT(best, 10.0);
  EXPECT_LT(best, 40.0);
}

}  // namespace
}  // namespace ratel
