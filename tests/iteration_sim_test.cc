#include "core/iteration_sim.h"

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "core/activation_planner.h"
#include "common/units.h"
#include "core/hardware_profile.h"
#include "hw/catalog.h"
#include "model/transformer_config.h"

namespace ratel {
namespace {

struct SimFixture {
  WorkloadProfile workload;
  HardwareProfile hw;
  ActivationPlan plan;

  static SimFixture Make(const std::string& model, int batch,
                         int64_t mem_gib = 768, int ssds = 12) {
    auto cfg = LlmFromTableIV(model);
    EXPECT_TRUE(cfg.ok());
    SimFixture f{WorkloadProfile::Build(*cfg, batch), {}, {}};
    const ServerConfig server = catalog::EvaluationServer(
        catalog::Rtx4090(), mem_gib * kGiB, ssds);
    auto hp = HardwareProfiler(server).Profile(f.workload);
    EXPECT_TRUE(hp.ok()) << hp.status().ToString();
    f.hw = *hp;
    const CostModel cm(f.hw, f.workload);
    f.plan = ActivationPlanner(cm).Plan();
    return f;
  }
};

IterationResult MustSimulate(const SimFixture& f, const IterationKnobs& k) {
  auto res = IterationSimulator(f.hw, f.workload, f.plan, k).Simulate();
  EXPECT_TRUE(res.ok()) << res.status().ToString();
  return *res;
}

TEST(IterationSimTest, StagesArePositiveAndSum) {
  const auto f = SimFixture::Make("13B", 32);
  IterationKnobs k;
  const IterationResult r = MustSimulate(f, k);
  EXPECT_GT(r.t_forward, 0.0);
  EXPECT_GT(r.t_backward, 0.0);
  EXPECT_NEAR(r.t_iter, r.t_forward + r.t_backward + r.t_optimizer, 1e-6);
  EXPECT_GT(r.tokens_per_s, 0.0);
  EXPECT_GT(r.model_tflops, 0.0);
}

TEST(IterationSimTest, UtilizationsAreFractions) {
  const auto f = SimFixture::Make("13B", 32);
  IterationKnobs k;
  const IterationResult r = MustSimulate(f, k);
  for (const StageStats* s : {&r.forward, &r.backward}) {
    EXPECT_GE(s->gpu_busy_frac, 0.0);
    EXPECT_LE(s->gpu_busy_frac, 1.0 + 1e-9);
    EXPECT_LE(s->m2g_busy_frac, 1.0 + 1e-9);
    EXPECT_LE(s->g2m_busy_frac, 1.0 + 1e-9);
    EXPECT_LE(s->ssd_busy_frac, 1.0 + 1e-9);
    EXPECT_LE(s->cpu_busy_frac, 1.0 + 1e-9);
  }
  EXPECT_LE(r.gpu_busy_frac, 1.0 + 1e-9);
}

TEST(IterationSimTest, AgreesWithClosedFormUnderFullOverlap) {
  // The DES pipelines everything; its stage times should be within ~35%
  // of Eq. 4/5 (which assume perfect overlap and no pipeline fill).
  const auto f = SimFixture::Make("13B", 32);
  const CostModel cm(f.hw, f.workload);
  const double tf = cm.ForwardTime(static_cast<double>(f.plan.a_g2m));
  const double tb = cm.BackwardTime(static_cast<double>(f.plan.a_g2m),
                                    f.plan.flop_r);
  IterationKnobs k;
  k.gpu_efficiency = 1.0;  // the closed form uses raw THP_G
  const IterationResult r = MustSimulate(f, k);
  EXPECT_NEAR(r.t_forward, tf, 0.35 * tf);
  EXPECT_NEAR(r.t_backward, tb, 0.45 * tb);
}

TEST(IterationSimTest, GradientModeOrdering) {
  // Optimized active offloading <= naive <= fully serialized (Fig. 3/7).
  const auto f = SimFixture::Make("13B", 64, 768, 12);
  IterationKnobs k;
  k.grad_mode = GradientOffloadMode::kOptimizedActive;
  const double t_opt = MustSimulate(f, k).t_iter;
  k.grad_mode = GradientOffloadMode::kNaiveActive;
  const double t_naive = MustSimulate(f, k).t_iter;
  k.grad_mode = GradientOffloadMode::kSerializedPipelined;
  const double t_serial_piped = MustSimulate(f, k).t_iter;
  k.grad_mode = GradientOffloadMode::kSerializedOptimizer;
  const double t_serial = MustSimulate(f, k).t_iter;
  EXPECT_LE(t_opt, t_naive * 1.001);
  EXPECT_LE(t_naive, t_serial * 1.001);
  EXPECT_LE(t_serial_piped, t_serial * 1.001);
  EXPECT_LT(t_opt, t_serial);  // strictly better end to end
}

TEST(IterationSimTest, SerializedModeReportsOptimizerTail) {
  const auto f = SimFixture::Make("13B", 32);
  IterationKnobs k;
  k.grad_mode = GradientOffloadMode::kSerializedOptimizer;
  const IterationResult r = MustSimulate(f, k);
  EXPECT_GT(r.t_optimizer, 1.0);  // a real separate stage
  k.grad_mode = GradientOffloadMode::kOptimizedActive;
  const IterationResult r2 = MustSimulate(f, k);
  EXPECT_DOUBLE_EQ(r2.t_optimizer, 0.0);  // hidden behind backward
}

TEST(IterationSimTest, ZeroInfinityOptimizerStageNearPaper) {
  // Section III-B / Fig. 1a: the serialized out-of-core optimizer stage
  // for 13B on 12 SSDs measures ~23 s.
  const auto f = SimFixture::Make("13B", 32);
  IterationKnobs k;
  k.grad_mode = GradientOffloadMode::kSerializedOptimizer;
  const IterationResult r = MustSimulate(f, k);
  EXPECT_NEAR(r.t_optimizer, 23.0, 6.0);
}

TEST(IterationSimTest, PerLayerOverheadSlowsIteration) {
  const auto f = SimFixture::Make("13B", 32);
  IterationKnobs fast;
  IterationKnobs slow;
  slow.per_layer_overhead_s = 0.2;
  const double t_fast = MustSimulate(f, fast).t_iter;
  const double t_slow = MustSimulate(f, slow).t_iter;
  // 40 blocks x ~3 passes x 0.2 s of extra GPU serialization.
  EXPECT_GT(t_slow, t_fast + 10.0);
}

TEST(IterationSimTest, LowerGpuEfficiencyLowersTflops) {
  const auto f = SimFixture::Make("13B", 32);
  IterationKnobs hi;
  hi.gpu_efficiency = 0.95;
  IterationKnobs lo;
  lo.gpu_efficiency = 0.50;
  EXPECT_GT(MustSimulate(f, hi).model_tflops,
            MustSimulate(f, lo).model_tflops);
}

TEST(IterationSimTest, GpuOptimizerMovesStatesOverSsdLink) {
  // G10-style in-GPU Adam: the optimizer tail is dominated by streaming
  // 26P+ bytes through the SSD array (Fig. 1b: ~13 s for 13B).
  const auto f = SimFixture::Make("13B", 32);
  IterationKnobs k;
  k.gpu_optimizer = true;
  const IterationResult r = MustSimulate(f, k);
  EXPECT_GT(r.t_optimizer, 8.0);
  EXPECT_LT(r.t_optimizer, 18.0);
}

TEST(IterationSimTest, MainMemoryStatesSkipSsd) {
  // ZeRO-Offload placement: with states in DRAM the optimizer stage
  // shrinks to CPU-compute plus fast memory traffic.
  const auto f = SimFixture::Make("13B", 32);
  IterationKnobs ssd;
  ssd.grad_mode = GradientOffloadMode::kSerializedOptimizer;
  ssd.state_placement = ModelStatePlacement::kSsd;
  IterationKnobs dram = ssd;
  dram.state_placement = ModelStatePlacement::kMainMemory;
  EXPECT_LT(MustSimulate(f, dram).t_optimizer,
            MustSimulate(f, ssd).t_optimizer);
}

TEST(IterationSimTest, MultiGpuIncreasesAggregateThroughput) {
  const auto f = SimFixture::Make("13B", 16, 768, 12);
  IterationKnobs one;
  one.num_gpus = 1;
  IterationKnobs four;
  four.num_gpus = 4;
  const double t1 = MustSimulate(f, one).tokens_per_s;
  const double t4 = MustSimulate(f, four).tokens_per_s;
  EXPECT_GT(t4, t1 * 1.5);       // clearly better than one GPU
  EXPECT_LT(t4, t1 * 4.0 + 1.0);  // but not super-linear
}

TEST(IterationSimTest, ActivationsResidentSkipsSwapTraffic) {
  const auto f = SimFixture::Make("6B", 8, 768, 12);
  IterationKnobs moving;
  IterationKnobs resident;
  resident.activations_resident = true;
  resident.state_placement = ModelStatePlacement::kGpu;
  const IterationResult r = MustSimulate(f, resident);
  // Backward has no recompute: strictly less GPU work than the moving
  // config which recomputes some units.
  EXPECT_LE(r.t_iter, MustSimulate(f, moving).t_iter * 1.01);
}

TEST(IterationSimTest, DeeperStagingNeverSlower) {
  // Fig. 3b's lookahead: depth 1 collapses towards the naive handler;
  // deeper staging monotonically helps until the pipeline saturates.
  const auto f = SimFixture::Make("13B", 32);
  double prev = 1e300;
  for (int depth : {1, 2, 4, 8}) {
    IterationKnobs k;
    k.staging_depth = depth;
    const double t = MustSimulate(f, k).t_iter;
    EXPECT_LE(t, prev * 1.001) << depth;
    prev = t;
  }
}

TEST(IterationSimTest, MoreSsdsNeverSlower) {
  auto cfg = LlmFromTableIV("135B");
  ASSERT_TRUE(cfg.ok());
  double prev = 1e30;
  for (int ssds : {1, 2, 3, 6, 12}) {
    const WorkloadProfile wl = WorkloadProfile::Build(*cfg, 8);
    const ServerConfig server =
        catalog::EvaluationServer(catalog::Rtx4090(), 768 * kGiB, ssds);
    auto hp = HardwareProfiler(server).Profile(wl);
    ASSERT_TRUE(hp.ok());
    const CostModel cm(*hp, wl);
    const ActivationPlan plan = ActivationPlanner(cm).Plan();
    IterationKnobs k;
    auto res = IterationSimulator(*hp, wl, plan, k).Simulate();
    ASSERT_TRUE(res.ok());
    EXPECT_LE(res->t_iter, prev * 1.001) << ssds;
    prev = res->t_iter;
  }
}

using ModeParam = std::tuple<const char*, int>;

class GradientModeSweep : public ::testing::TestWithParam<ModeParam> {};

TEST_P(GradientModeSweep, OptimizedNeverWorse) {
  const auto [model, batch] = GetParam();
  const auto f = SimFixture::Make(model, batch);
  IterationKnobs k;
  k.grad_mode = GradientOffloadMode::kOptimizedActive;
  const double t_opt = MustSimulate(f, k).t_iter;
  for (auto mode : {GradientOffloadMode::kNaiveActive,
                    GradientOffloadMode::kSerializedPipelined,
                    GradientOffloadMode::kSerializedOptimizer}) {
    k.grad_mode = mode;
    EXPECT_LE(t_opt, MustSimulate(f, k).t_iter * 1.001)
        << model << " b" << batch << " vs " << GradientOffloadModeName(mode);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GradientModeSweep,
    ::testing::Values(ModeParam{"6B", 8}, ModeParam{"6B", 32},
                      ModeParam{"13B", 8}, ModeParam{"13B", 32},
                      ModeParam{"13B", 64}, ModeParam{"30B", 16},
                      ModeParam{"70B", 16}, ModeParam{"175B", 8}),
    [](const ::testing::TestParamInfo<ModeParam>& info) {
      return std::string(std::get<0>(info.param)) + "_b" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace ratel
