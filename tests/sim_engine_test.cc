#include "sim/engine.h"

#include <gtest/gtest.h>

#include <vector>

namespace ratel {
namespace {

TEST(SimEngineTest, SingleTaskTakesAmountOverRate) {
  SimEngine eng;
  const ResourceId r = eng.AddResource("link", 10.0);
  const TaskId t = eng.AddTask("xfer", r, 50.0);
  ASSERT_TRUE(eng.Run().ok());
  EXPECT_DOUBLE_EQ(eng.timing(t).start, 0.0);
  EXPECT_NEAR(eng.timing(t).finish, 5.0, 1e-9);
  EXPECT_NEAR(eng.Makespan(), 5.0, 1e-9);
}

TEST(SimEngineTest, DependenciesSerialize) {
  SimEngine eng;
  const ResourceId r = eng.AddResource("gpu", 1.0);
  const TaskId a = eng.AddTask("a", r, 2.0);
  const TaskId b = eng.AddTask("b", r, 3.0, {a});
  ASSERT_TRUE(eng.Run().ok());
  EXPECT_NEAR(eng.timing(a).finish, 2.0, 1e-9);
  EXPECT_NEAR(eng.timing(b).start, 2.0, 1e-9);
  EXPECT_NEAR(eng.timing(b).finish, 5.0, 1e-9);
}

TEST(SimEngineTest, ProcessorSharingSplitsRate) {
  // Two equal tasks on one resource finish together at 2x single time.
  SimEngine eng;
  const ResourceId r = eng.AddResource("link", 10.0);
  const TaskId a = eng.AddTask("a", r, 10.0);
  const TaskId b = eng.AddTask("b", r, 10.0);
  ASSERT_TRUE(eng.Run().ok());
  EXPECT_NEAR(eng.timing(a).finish, 2.0, 1e-9);
  EXPECT_NEAR(eng.timing(b).finish, 2.0, 1e-9);
}

TEST(SimEngineTest, UnequalShareReleasesBandwidth) {
  // a=10, b=30 on rate 10: both at rate 5 until t=2 (a done), then b at
  // rate 10 for its remaining 20 -> finishes at t=4.
  SimEngine eng;
  const ResourceId r = eng.AddResource("link", 10.0);
  const TaskId a = eng.AddTask("a", r, 10.0);
  const TaskId b = eng.AddTask("b", r, 30.0);
  ASSERT_TRUE(eng.Run().ok());
  EXPECT_NEAR(eng.timing(a).finish, 2.0, 1e-9);
  EXPECT_NEAR(eng.timing(b).finish, 4.0, 1e-9);
}

TEST(SimEngineTest, IndependentResourcesOverlap) {
  SimEngine eng;
  const ResourceId gpu = eng.AddResource("gpu", 1.0);
  const ResourceId pcie = eng.AddResource("pcie", 1.0);
  const TaskId a = eng.AddTask("compute", gpu, 5.0);
  const TaskId b = eng.AddTask("xfer", pcie, 4.0);
  ASSERT_TRUE(eng.Run().ok());
  EXPECT_NEAR(eng.timing(a).finish, 5.0, 1e-9);
  EXPECT_NEAR(eng.timing(b).finish, 4.0, 1e-9);
  EXPECT_NEAR(eng.Makespan(), 5.0, 1e-9);
}

TEST(SimEngineTest, ZeroAmountTaskIsBarrier) {
  SimEngine eng;
  const ResourceId r = eng.AddResource("gpu", 1.0);
  const TaskId a = eng.AddTask("a", r, 3.0);
  const TaskId b = eng.AddTask("b", r, 2.0);
  const TaskId barrier = eng.AddTask("barrier", r, 0.0, {a, b});
  const TaskId c = eng.AddTask("c", r, 1.0, {barrier});
  ASSERT_TRUE(eng.Run().ok());
  // a and b share: a finishes at 5 (3*... let's just check ordering).
  EXPECT_GE(eng.timing(barrier).finish,
            std::max(eng.timing(a).finish, eng.timing(b).finish) - 1e-9);
  EXPECT_NEAR(eng.timing(c).start, eng.timing(barrier).finish, 1e-9);
}

TEST(SimEngineTest, PipelineOverlapsStages) {
  // Classic 2-stage pipeline: N items through compute (1s) then transfer
  // (1s) on chained FIFO channels: makespan = N + 1, not 2N.
  constexpr int kItems = 8;
  SimEngine eng;
  const ResourceId gpu = eng.AddResource("gpu", 1.0);
  const ResourceId link = eng.AddResource("link", 1.0);
  TaskId prev_compute = -1, prev_xfer = -1;
  for (int i = 0; i < kItems; ++i) {
    std::vector<TaskId> cdeps;
    if (prev_compute >= 0) cdeps.push_back(prev_compute);
    const TaskId c = eng.AddTask("c", gpu, 1.0, cdeps);
    std::vector<TaskId> xdeps{c};
    if (prev_xfer >= 0) xdeps.push_back(prev_xfer);
    prev_xfer = eng.AddTask("x", link, 1.0, xdeps);
    prev_compute = c;
  }
  ASSERT_TRUE(eng.Run().ok());
  EXPECT_NEAR(eng.Makespan(), kItems + 1.0, 1e-6);
}

TEST(SimEngineTest, BusyTimeAccounting) {
  SimEngine eng;
  const ResourceId gpu = eng.AddResource("gpu", 2.0);
  const TaskId a = eng.AddTask("a", gpu, 4.0);           // [0, 2)
  eng.AddTask("b", gpu, 2.0, {a});                       // [2, 3)
  ASSERT_TRUE(eng.Run().ok());
  EXPECT_NEAR(eng.ResourceBusyTime(gpu, 0.0, 3.0), 3.0, 1e-9);
  EXPECT_NEAR(eng.ResourceBusyTime(gpu, 0.0, 1.0), 1.0, 1e-9);
  EXPECT_NEAR(eng.ResourceBusyTime(gpu, 2.5, 10.0), 0.5, 1e-9);
  EXPECT_NEAR(eng.ResourceWorkDone(gpu, 0.0, 3.0), 6.0, 1e-9);
  EXPECT_NEAR(eng.ResourceWorkDone(gpu, 0.0, 1.5), 3.0, 1e-9);
}

TEST(SimEngineTest, IdleGapNotCountedBusy) {
  SimEngine eng;
  const ResourceId gpu = eng.AddResource("gpu", 1.0);
  const ResourceId link = eng.AddResource("link", 1.0);
  const TaskId x = eng.AddTask("x", link, 5.0);
  eng.AddTask("c", gpu, 1.0, {x});  // gpu idle during [0,5)
  ASSERT_TRUE(eng.Run().ok());
  EXPECT_NEAR(eng.ResourceBusyTime(gpu, 0.0, 6.0), 1.0, 1e-9);
}

TEST(SimEngineTest, RunTwiceFails) {
  SimEngine eng;
  const ResourceId r = eng.AddResource("r", 1.0);
  eng.AddTask("a", r, 1.0);
  ASSERT_TRUE(eng.Run().ok());
  EXPECT_EQ(eng.Run().code(), StatusCode::kFailedPrecondition);
}

TEST(SimEngineTest, ManyTasksDeterministic) {
  // Two identical graphs produce identical schedules.
  auto build_and_run = [] {
    SimEngine eng;
    const ResourceId r0 = eng.AddResource("a", 3.0);
    const ResourceId r1 = eng.AddResource("b", 7.0);
    TaskId last = -1;
    for (int i = 0; i < 200; ++i) {
      std::vector<TaskId> deps;
      if (last >= 0 && i % 3 == 0) deps.push_back(last);
      last = eng.AddTask("t", i % 2 ? r0 : r1, 1.0 + i % 5, deps);
    }
    EXPECT_TRUE(eng.Run().ok());
    return eng.Makespan();
  };
  EXPECT_DOUBLE_EQ(build_and_run(), build_and_run());
}

}  // namespace
}  // namespace ratel
