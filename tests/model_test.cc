#include <gtest/gtest.h>

#include <cmath>

#include "common/units.h"
#include "model/tensor_inventory.h"
#include "model/transformer_config.h"
#include "model/workload.h"

namespace ratel {
namespace {

double Billions(int64_t params) { return static_cast<double>(params) / 1e9; }

// ---------- Table IV configurations ----------

TEST(TransformerConfigTest, TableIVSizesMatchNames) {
  // Parameter counts should land near the nominal size names.
  struct Expected {
    const char* name;
    double billions;
    double tolerance;
  };
  const Expected cases[] = {
      {"6B", 6.0, 0.8},    {"13B", 13.0, 1.0},  {"30B", 30.0, 2.0},
      {"70B", 70.0, 6.0},  {"135B", 135.0, 8.0}, {"175B", 175.0, 10.0},
      {"276B", 276.0, 15.0}, {"412B", 412.0, 20.0},
  };
  for (const auto& c : cases) {
    auto cfg = LlmFromTableIV(c.name);
    ASSERT_TRUE(cfg.ok()) << c.name;
    EXPECT_NEAR(Billions(cfg->ParameterCount()), c.billions, c.tolerance)
        << c.name;
  }
}

TEST(TransformerConfigTest, TableIVHyperparameters) {
  auto cfg = LlmFromTableIV("13B");
  ASSERT_TRUE(cfg.ok());
  EXPECT_EQ(cfg->num_layers, 40);
  EXPECT_EQ(cfg->num_heads, 40);
  EXPECT_EQ(cfg->hidden_dim, 5120);
  EXPECT_EQ(cfg->seq_len, 1024);
  EXPECT_EQ(cfg->vocab_size, 50257);
}

TEST(TransformerConfigTest, UnknownNameIsNotFound) {
  EXPECT_EQ(LlmFromTableIV("999B").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(DiTFromTableVI("7B").status().code(), StatusCode::kNotFound);
}

TEST(TransformerConfigTest, AllTableIVSortedAscending) {
  const auto models = AllTableIVModels();
  ASSERT_EQ(models.size(), 8u);
  for (size_t i = 1; i < models.size(); ++i) {
    EXPECT_GT(models[i].ParameterCount(), models[i - 1].ParameterCount());
  }
}

TEST(TransformerConfigTest, TableVIDiTSizes) {
  auto dit = DiTFromTableVI("0.67B");
  ASSERT_TRUE(dit.ok());
  EXPECT_EQ(dit->kind, ModelKind::kDiffusionTransformer);
  // DiT-XL/2 is ~675M parameters.
  EXPECT_NEAR(Billions(dit->ParameterCount()), 0.67, 0.08);
  const auto models = AllTableVIModels();
  ASSERT_EQ(models.size(), 6u);
  EXPECT_NEAR(Billions(models.back().ParameterCount()), 40.0, 5.0);
}

TEST(TransformerConfigTest, SyntheticLlmHitsTarget) {
  for (double target : {2.0, 10.0, 42.0, 100.0, 250.0, 500.0}) {
    const TransformerConfig cfg = SyntheticLlm(target);
    EXPECT_NEAR(Billions(cfg.ParameterCount()), target, target * 0.15)
        << target;
  }
}

TEST(TransformerConfigTest, SyntheticLlmMonotone) {
  int64_t prev = 0;
  for (double b = 1.0; b < 400.0; b *= 1.3) {
    const int64_t p = SyntheticLlm(b).ParameterCount();
    EXPECT_GE(p, prev) << b;
    prev = p;
  }
}

// ---------- Table II tensor inventory ----------

TEST(TensorInventoryTest, SizesFollowTableII) {
  const int64_t p = 1000;
  EXPECT_EQ(Params32Bytes(p), 4000);
  EXPECT_EQ(OptimStates32Bytes(p), 8000);
  EXPECT_EQ(Grads16Bytes(p), 2000);
  EXPECT_EQ(Params16Bytes(p), 2000);
  EXPECT_EQ(ModelStateBytes(p), 16000);
}

TEST(TensorInventoryTest, LifecyclesFollowTableII) {
  auto cfg = LlmFromTableIV("6B");
  ASSERT_TRUE(cfg.ok());
  const auto rows = BuildTensorInventory(*cfg, 4);
  ASSERT_EQ(rows.size(), 5u);
  const int64_t p = cfg->ParameterCount();
  for (const auto& row : rows) {
    switch (row.cls) {
      case TensorClass::kParams32:
        EXPECT_EQ(row.bytes, 4 * p);
        EXPECT_TRUE(row.produced_previous_iteration);
        EXPECT_EQ(row.consumed_in, TrainStage::kOptimizer);
        break;
      case TensorClass::kOptimStates32:
        EXPECT_EQ(row.bytes, 8 * p);
        break;
      case TensorClass::kGrads16:
        EXPECT_EQ(row.bytes, 2 * p);
        EXPECT_EQ(row.produced_in, TrainStage::kBackward);
        EXPECT_EQ(row.consumed_in, TrainStage::kOptimizer);
        EXPECT_FALSE(row.produced_previous_iteration);
        break;
      case TensorClass::kParams16:
        EXPECT_EQ(row.bytes, 2 * p);
        EXPECT_EQ(row.consumed_in, TrainStage::kForward);
        break;
      case TensorClass::kActivations16:
        EXPECT_GT(row.bytes, 0);
        EXPECT_EQ(row.produced_in, TrainStage::kForward);
        EXPECT_EQ(row.consumed_in, TrainStage::kBackward);
        break;
    }
  }
}

// ---------- Workload profile calibration (Section III numbers) ----------

TEST(WorkloadProfileTest, Activations13BBatch32MatchPaper) {
  auto cfg = LlmFromTableIV("13B");
  ASSERT_TRUE(cfg.ok());
  const WorkloadProfile wl = WorkloadProfile::Build(*cfg, 32);
  // "offloads almost all activations (213 GB when fine-tuning a 13B model
  //  with a batch size of 32)" - Section III-C.
  EXPECT_NEAR(wl.total_activation_bytes() / 1e9, 213.0, 15.0);
  // "inter-transformer block activations (12.5 GB for a 13B model with a
  //  batch size of 32)" - Section III-B.
  EXPECT_NEAR(wl.inter_block_activation_bytes() / 1e9, 12.5, 1.5);
  // Inter-block is ~6% of total activations (Section I).
  const double frac =
      static_cast<double>(wl.inter_block_activation_bytes()) /
      static_cast<double>(wl.total_activation_bytes());
  EXPECT_NEAR(frac, 0.06, 0.02);
}

TEST(WorkloadProfileTest, ForwardFlopsNearSixPDTokens) {
  // FLOP_f ~ 2 * P * tokens for decoder LLMs (plus attention overhead).
  auto cfg = LlmFromTableIV("13B");
  ASSERT_TRUE(cfg.ok());
  const WorkloadProfile wl = WorkloadProfile::Build(*cfg, 32);
  const double tokens = 32.0 * 1024.0;
  const double ratio =
      wl.forward_flops() / (2.0 * static_cast<double>(wl.param_count()) *
                            tokens);
  EXPECT_GT(ratio, 0.95);
  EXPECT_LT(ratio, 1.25);
}

TEST(WorkloadProfileTest, ScalesLinearlyWithBatch) {
  auto cfg = LlmFromTableIV("6B");
  ASSERT_TRUE(cfg.ok());
  const WorkloadProfile w1 = WorkloadProfile::Build(*cfg, 8);
  const WorkloadProfile w2 = WorkloadProfile::Build(*cfg, 16);
  EXPECT_EQ(w2.total_activation_bytes(), 2 * w1.total_activation_bytes());
  EXPECT_EQ(w2.inter_block_activation_bytes(),
            2 * w1.inter_block_activation_bytes());
  EXPECT_NEAR(w2.forward_flops(), 2.0 * w1.forward_flops(),
              1e-6 * w2.forward_flops());
  EXPECT_EQ(w1.param_count(), w2.param_count());
}

TEST(WorkloadProfileTest, UnitsSumToBlockTotals) {
  auto cfg = LlmFromTableIV("6B");
  ASSERT_TRUE(cfg.ok());
  const WorkloadProfile wl = WorkloadProfile::Build(*cfg, 4);
  int64_t unit_bytes = 0;
  double unit_flops = 0.0;
  for (const auto& u : wl.activation_units()) {
    unit_bytes += u.bytes;
    unit_flops += u.recompute_flops;
  }
  EXPECT_EQ(unit_bytes, wl.total_activation_bytes());
  // Recomputable FLOPs cover the block forward cost (head excluded).
  double block_flops = 0.0;
  for (const auto& b : wl.blocks()) block_flops += b.forward_flops;
  EXPECT_NEAR(unit_flops / block_flops, 1.0, 0.01);
}

TEST(WorkloadProfileTest, OffloadingBenefitOrderingMatchesEq6) {
  // Matmul outputs (OB ~ hidden) should rank above attention context
  // (OB ~ 2*seq) when hidden > 2*seq, and layernorms near zero.
  auto cfg = LlmFromTableIV("13B");  // h=5120 > 2s=2048
  ASSERT_TRUE(cfg.ok());
  const WorkloadProfile wl = WorkloadProfile::Build(*cfg, 2);
  double ob_qkv = -1, ob_ctx = -1, ob_ln = -1;
  for (const auto& u : wl.activation_units()) {
    if (u.layer_index != 0) continue;
    if (u.name.find("qkv") != std::string::npos) ob_qkv = u.OffloadingBenefit();
    if (u.name.find("attn_ctx") != std::string::npos) {
      ob_ctx = u.OffloadingBenefit();
    }
    if (u.name.find("ln1") != std::string::npos) ob_ln = u.OffloadingBenefit();
  }
  ASSERT_GT(ob_qkv, 0);
  EXPECT_GT(ob_qkv, ob_ctx);
  EXPECT_GT(ob_ctx, ob_ln);
  EXPECT_NEAR(ob_qkv, cfg->hidden_dim, cfg->hidden_dim * 0.01);
  EXPECT_NEAR(ob_ctx, 2.0 * cfg->seq_len, 2.0 * cfg->seq_len * 0.01);
}

TEST(WorkloadProfileTest, TokensPerIteration) {
  auto llm = LlmFromTableIV("6B");
  ASSERT_TRUE(llm.ok());
  EXPECT_EQ(WorkloadProfile::Build(*llm, 8).tokens_per_iteration(), 8 * 1024);
  auto dit = DiTFromTableVI("0.67B");
  ASSERT_TRUE(dit.ok());
  EXPECT_EQ(WorkloadProfile::Build(*dit, 8).tokens_per_iteration(), 8);
}

TEST(WorkloadProfileTest, MemoryFootprint175BMatchesIntro) {
  // Section I: fine-tuning ~175B requires ~2.45 TB (model states +
  // activations at batch 1 scale is dominated by 16P = 2.8 TB; the
  // paper's 2.45 TB counts model states of 175B: 16 * 175e9 / 1e12).
  auto cfg = LlmFromTableIV("175B");
  ASSERT_TRUE(cfg.ok());
  const double tb = ModelStateBytes(cfg->ParameterCount()) / 1e12;
  EXPECT_NEAR(tb, 2.8, 0.3);
}

}  // namespace
}  // namespace ratel
