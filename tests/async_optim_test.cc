// Asynchronous-optimizer suite (ctest labels: determinism, async).
//
// The stall-free update pipeline promises two things at once:
//   1. *Sync mode is untouched*: with AsyncUpdateOptions{} the engine is
//      bitwise identical to the classic blocking OutOfCoreAdam — same
//      arithmetic, same per-flow traffic.
//   2. *Async mode is exact, bounded, and reproducible*: deferring the
//      tail chunks changes WHEN state is written, never WHAT — the
//      final state matches sync bitwise, every consumer drains the
//      pending epoch first (staleness <= 1 step), and because the
//      hot/tail split has fixed boundaries the whole run is bitwise
//      reproducible at any compute or background thread count.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "autograd/transformer.h"
#include "common/rng.h"
#include "runtime/checkpoint.h"
#include "runtime/compute_pool.h"
#include "runtime/out_of_core_adam.h"
#include "runtime/ratel_trainer.h"

namespace ratel {
namespace {

std::string TempDir(const std::string& tag) {
  return ::testing::TempDir() + "/ratel_async_" + tag + "_" +
         std::to_string(::getpid());
}

Result<std::unique_ptr<TransferEngine>> OpenEngine(
    const std::string& tag, int64_t cache_bytes = 0,
    double write_bandwidth = 0.0) {
  TransferOptions opts;
  opts.dir = TempDir(tag);
  opts.num_stripes = 2;
  opts.chunk_bytes = 4096;
  opts.host_cache_bytes = cache_bytes;
  opts.write_bandwidth = write_bandwidth;
  return TransferEngine::Open(opts);
}

bool BitwiseEqual(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

bool BitwiseEqual16(const std::vector<Fp16>& a, const std::vector<Fp16>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(Fp16)) == 0;
}

std::vector<float> RandomVec(int64_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (int64_t i = 0; i < n; ++i) {
    v[i] = static_cast<float>(rng.NextGaussian()) * 0.5f;
  }
  return v;
}

std::vector<Fp16> RandomGrads16(int64_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Fp16> g(n);
  for (int64_t i = 0; i < n; ++i) {
    g[i] = FloatToHalf(static_cast<float>(rng.NextGaussian()) * 0.1f);
  }
  return g;
}

// ---------- Env overlay ----------

TEST(AsyncUpdateOptionsTest, FromEnvOverlaysTheKnobs) {
  ::setenv("RATEL_ASYNC_OPTIM", "1", 1);
  ::setenv("RATEL_ASYNC_HOT_FRACTION", "0.5", 1);
  AsyncUpdateOptions base;
  base.hot_fraction = 0.25;
  const AsyncUpdateOptions on = AsyncUpdateOptions::FromEnv(base);
  EXPECT_TRUE(on.async);
  EXPECT_DOUBLE_EQ(on.hot_fraction, 0.5);

  // "0" forces sync even when the caller asked for async.
  ::setenv("RATEL_ASYNC_OPTIM", "0", 1);
  ::unsetenv("RATEL_ASYNC_HOT_FRACTION");
  base.async = true;
  const AsyncUpdateOptions off = AsyncUpdateOptions::FromEnv(base);
  EXPECT_FALSE(off.async);
  EXPECT_DOUBLE_EQ(off.hot_fraction, 0.25);  // untouched without the knob
  ::unsetenv("RATEL_ASYNC_OPTIM");

  // Unset env leaves the base untouched.
  const AsyncUpdateOptions same = AsyncUpdateOptions::FromEnv(base);
  EXPECT_TRUE(same.async);
}

// ---------- Importance partition ----------

TEST(ChunkPartitionTest, CoversEveryChunkExactlyOnceWithFixedBoundaries) {
  const int64_t chunk = 8;
  const int64_t n = 100;  // 13 chunks, ragged tail
  const std::vector<Fp16> g = RandomGrads16(n, 42);
  const ChunkPartition part =
      PartitionChunksByImportance(n, g.data(), /*hot_fraction=*/0.25, chunk);
  EXPECT_EQ(part.chunk, chunk);
  // ceil(0.25 * 13) = 4 hot chunks.
  EXPECT_EQ(static_cast<int64_t>(part.hot.size()), 4);
  EXPECT_EQ(part.hot.size() + part.tail.size(), 13u);
  // Both lists ascending, union = [0, 13).
  std::vector<bool> seen(13, false);
  for (size_t i = 1; i < part.hot.size(); ++i) {
    EXPECT_LT(part.hot[i - 1], part.hot[i]);
  }
  for (size_t i = 1; i < part.tail.size(); ++i) {
    EXPECT_LT(part.tail[i - 1], part.tail[i]);
  }
  for (int64_t c : part.hot) seen[c] = true;
  for (int64_t c : part.tail) {
    EXPECT_FALSE(seen[c]) << "chunk " << c << " in both lists";
    seen[c] = true;
  }
  for (int64_t c = 0; c < 13; ++c) EXPECT_TRUE(seen[c]) << "chunk " << c;
}

TEST(ChunkPartitionTest, IsAPureFunctionAcrossThreadCounts) {
  const int64_t n = 64 * 9 + 17;
  const std::vector<Fp16> g = RandomGrads16(n, 7);
  SetComputeThreads(1);
  const ChunkPartition serial =
      PartitionChunksByImportance(n, g.data(), 0.3, /*chunk=*/64);
  SetComputeThreads(4);
  const ChunkPartition parallel =
      PartitionChunksByImportance(n, g.data(), 0.3, /*chunk=*/64);
  SetComputeThreads(1);
  EXPECT_EQ(serial.hot, parallel.hot);
  EXPECT_EQ(serial.tail, parallel.tail);
}

TEST(ChunkPartitionTest, DegenerateFractionsClampSanely) {
  const int64_t n = 64 * 4;
  const std::vector<Fp16> g = RandomGrads16(n, 3);
  // >= 1: everything is hot, nothing defers.
  const ChunkPartition all =
      PartitionChunksByImportance(n, g.data(), 1.0, /*chunk=*/64);
  EXPECT_EQ(all.hot.size(), 4u);
  EXPECT_TRUE(all.tail.empty());
  // 0: at least one chunk is always hot (the critical-path anchor).
  const ChunkPartition one =
      PartitionChunksByImportance(n, g.data(), 0.0, /*chunk=*/64);
  EXPECT_EQ(one.hot.size(), 1u);
  EXPECT_EQ(one.tail.size(), 3u);
}

TEST(ChunkPartitionTest, PicksTheLargestGradientChunksAsHot) {
  // Chunk 2 carries all the gradient mass; it must be the hot one.
  const int64_t chunk = 4;
  std::vector<Fp16> g(16, FloatToHalf(0.0f));
  for (int64_t i = 8; i < 12; ++i) g[i] = FloatToHalf(3.0f);
  const ChunkPartition part =
      PartitionChunksByImportance(16, g.data(), 0.0, chunk);
  ASSERT_EQ(part.hot.size(), 1u);
  EXPECT_EQ(part.hot[0], 2);
}

// ---------- Sync mode: bitwise the classic optimizer ----------

TEST(AsyncOptimTest, SyncModeMatchesInMemoryChunkedAdamBitwise) {
  auto engine = OpenEngine("sync_ref");
  ASSERT_TRUE(engine.ok());
  AdamConfig cfg;
  cfg.lr = 1e-2;
  cfg.weight_decay = 0.01;
  OutOfCoreAdam ooc(cfg, engine->get());  // defaults: sync mode
  EXPECT_FALSE(ooc.async());
  ChunkedCpuAdam ram(cfg);

  const int64_t n = 512;
  const std::vector<float> init = RandomVec(n, 1);
  ASSERT_TRUE(ooc.Register("w", init).ok());
  ASSERT_TRUE(ram.Register("w", init).ok());
  for (int step = 1; step <= 5; ++step) {
    const std::vector<Fp16> g = RandomGrads16(n, 100 + step);
    ASSERT_TRUE(ooc.StepTensor("w", g).ok());
    ASSERT_TRUE(ram.StepTensor("w", g, nullptr).ok());
  }
  std::vector<float> master;
  ASSERT_TRUE(ooc.FetchMasterParams("w", &master).ok());
  auto ref = ram.MasterParams("w");
  ASSERT_TRUE(ref.ok());
  EXPECT_TRUE(BitwiseEqual(master, **ref));
  // Sync mode never touches the pipeline counters or the deferred flow.
  const AsyncUpdateEngine::Stats stats = ooc.stats();
  EXPECT_EQ(stats.deferred_epochs, 0);
  EXPECT_EQ(stats.tail_chunks, 0);
  EXPECT_EQ((*engine)->stats().Flow(FlowClass::kDeferredState).bytes_written,
            0);
}

// ---------- Async mode: exact, overlapped, reproducible ----------

struct RunResult {
  std::vector<float> p32, m, v;
  std::vector<Fp16> p16;
  AsyncUpdateEngine::Stats stats;
};

// Runs `steps` updates of one tensor under the given options and
// returns the final out-of-core state.
RunResult RunUpdates(const std::string& tag, const AsyncUpdateOptions& options,
                     int64_t n, int steps, int compute_threads,
                     int64_t cache_bytes) {
  SetComputeThreads(compute_threads);
  auto engine = OpenEngine(tag, cache_bytes);
  EXPECT_TRUE(engine.ok());
  AdamConfig cfg;
  cfg.lr = 2e-3;
  cfg.weight_decay = 0.05;
  RunResult result;
  {
    OutOfCoreAdam ooc(cfg, engine->get(), options);
    EXPECT_TRUE(ooc.Register("w", RandomVec(n, 11)).ok());
    for (int step = 1; step <= steps; ++step) {
      EXPECT_TRUE(ooc.StepTensor("w", RandomGrads16(n, 500 + step)).ok());
    }
    int64_t adam_step = 0;
    EXPECT_TRUE(
        ooc.ExportState("w", &adam_step, &result.p32, &result.m, &result.v)
            .ok());
    EXPECT_EQ(adam_step, steps);
    EXPECT_TRUE(ooc.FetchParams16("w", &result.p16).ok());
    result.stats = ooc.stats();
  }
  SetComputeThreads(1);
  return result;
}

// Multi-chunk at partition granularity 64, with a ragged tail.
constexpr int64_t kN = 64 * 7 + 13;
constexpr int kSteps = 5;

TEST(AsyncOptimTest, AsyncFinalStateMatchesSyncBitwise) {
  const RunResult sync = RunUpdates("m_sync", AsyncUpdateOptions{}, kN, kSteps,
                                    /*compute_threads=*/1, /*cache_bytes=*/0);
  AsyncUpdateOptions async;
  async.async = true;
  async.hot_fraction = 0.25;
  async.chunk = 64;
  const RunResult deferred = RunUpdates("m_async", async, kN, kSteps,
                                        /*compute_threads=*/1,
                                        /*cache_bytes=*/1 << 20);
  // The pipeline really deferred work...
  EXPECT_GT(deferred.stats.deferred_epochs, 0);
  EXPECT_GT(deferred.stats.tail_chunks, 0);
  EXPECT_GT(deferred.stats.hot_chunks, 0);
  // ...and changed nothing about the result.
  EXPECT_TRUE(BitwiseEqual(sync.p32, deferred.p32));
  EXPECT_TRUE(BitwiseEqual(sync.m, deferred.m));
  EXPECT_TRUE(BitwiseEqual(sync.v, deferred.v));
  EXPECT_TRUE(BitwiseEqual16(sync.p16, deferred.p16));
}

TEST(AsyncOptimTest, AsyncWithoutDramTierIsStillExact) {
  // No cache: the drain barrier hardens to durable (store writes
  // resolved). Same bitwise contract.
  const RunResult sync = RunUpdates("nc_sync", AsyncUpdateOptions{}, kN, kSteps,
                                    1, /*cache_bytes=*/0);
  AsyncUpdateOptions async;
  async.async = true;
  async.chunk = 64;
  const RunResult deferred =
      RunUpdates("nc_async", async, kN, kSteps, 1, /*cache_bytes=*/0);
  EXPECT_GT(deferred.stats.deferred_epochs, 0);
  EXPECT_TRUE(BitwiseEqual(sync.p32, deferred.p32));
  EXPECT_TRUE(BitwiseEqual(sync.m, deferred.m));
  EXPECT_TRUE(BitwiseEqual(sync.v, deferred.v));
  EXPECT_TRUE(BitwiseEqual16(sync.p16, deferred.p16));
}

TEST(AsyncOptimTest, AsyncIsBitwiseReproducibleAcrossThreadCounts) {
  AsyncUpdateOptions async;
  async.async = true;
  async.hot_fraction = 0.3;
  async.chunk = 64;
  const RunResult a = RunUpdates("rep_a", async, kN, kSteps,
                                 /*compute_threads=*/1, /*cache_bytes=*/1 << 20);
  async.background_threads = 2;
  const RunResult b = RunUpdates("rep_b", async, kN, kSteps,
                                 /*compute_threads=*/4, /*cache_bytes=*/1 << 20);
  EXPECT_GT(a.stats.deferred_epochs, 0);
  EXPECT_TRUE(BitwiseEqual(a.p32, b.p32));
  EXPECT_TRUE(BitwiseEqual(a.m, b.m));
  EXPECT_TRUE(BitwiseEqual(a.v, b.v));
  EXPECT_TRUE(BitwiseEqual16(a.p16, b.p16));
  // The fixed partition boundaries also pin the hot/tail accounting.
  EXPECT_EQ(a.stats.hot_chunks, b.stats.hot_chunks);
  EXPECT_EQ(a.stats.tail_chunks, b.stats.tail_chunks);
}

TEST(AsyncOptimTest, StalenessBoundEveryFetchSeesTheFullyAppliedStep) {
  auto sync_engine = OpenEngine("stale_sync");
  auto async_engine = OpenEngine("stale_async", /*cache_bytes=*/1 << 20);
  ASSERT_TRUE(sync_engine.ok());
  ASSERT_TRUE(async_engine.ok());
  AdamConfig cfg;
  cfg.lr = 1e-2;
  AsyncUpdateOptions opts;
  opts.async = true;
  opts.hot_fraction = 0.25;
  opts.chunk = 64;
  OutOfCoreAdam sync_adam(cfg, sync_engine->get());
  OutOfCoreAdam async_adam(cfg, async_engine->get(), opts);

  const std::vector<float> init = RandomVec(kN, 21);
  ASSERT_TRUE(sync_adam.Register("w", init).ok());
  ASSERT_TRUE(async_adam.Register("w", init).ok());
  for (int step = 1; step <= kSteps; ++step) {
    const std::vector<Fp16> g = RandomGrads16(kN, 900 + step);
    ASSERT_TRUE(sync_adam.StepTensor("w", g).ok());
    ASSERT_TRUE(async_adam.StepTensor("w", g).ok());
    // Immediately after the step returns (tail epoch possibly still in
    // flight), a fetch must observe step N fully applied — never the
    // hot-only intermediate, never step N-1.
    std::vector<Fp16> p16_sync, p16_async;
    ASSERT_TRUE(sync_adam.FetchParams16("w", &p16_sync).ok());
    ASSERT_TRUE(async_adam.FetchParams16("w", &p16_async).ok());
    EXPECT_TRUE(BitwiseEqual16(p16_sync, p16_async)) << "step " << step;
    std::vector<float> m_sync, m_async;
    ASSERT_TRUE(sync_adam.FetchMasterParams("w", &m_sync).ok());
    ASSERT_TRUE(async_adam.FetchMasterParams("w", &m_async).ok());
    EXPECT_TRUE(BitwiseEqual(m_sync, m_async)) << "step " << step;
  }
  EXPECT_GT(async_adam.stats().deferred_epochs, 0);
  // Deferred traffic travelled on its own flow and is fully accounted.
  const TransferStats stats = (*async_engine)->stats();
  EXPECT_GT(stats.Flow(FlowClass::kDeferredState).bytes_written, 0);
  EXPECT_EQ(stats.Flow(FlowClass::kDeferredState).errors, 0);
}

// The two hard cases of the "published" drain barrier: the DRAM tier
// is a bounded LRU, so a deferred epoch's freshly admitted blobs can be
// evicted (or, if oversized, never admitted) while their store writes
// are still in flight behind a throttled channel. Residency pinning —
// and the per-epoch durable fallback when a pin cannot be taken — must
// keep every post-drain read exact anyway.

TEST(AsyncOptimTest, ExactUnderDramEvictionPressure) {
  // Three tensors churning a tier that holds roughly ONE tensor's
  // 14 B/param write set, writes throttled so the deferred epochs'
  // store writes stay in flight while the foreground fetches.
  auto sync_engine = OpenEngine("evict_sync");
  auto async_engine = OpenEngine("evict_async", /*cache_bytes=*/8192,
                                 /*write_bandwidth=*/2e6);
  ASSERT_TRUE(sync_engine.ok());
  ASSERT_TRUE(async_engine.ok());
  AdamConfig cfg;
  cfg.lr = 1e-2;
  AsyncUpdateOptions opts;
  opts.async = true;
  opts.hot_fraction = 0.25;
  opts.chunk = 64;
  OutOfCoreAdam sync_adam(cfg, sync_engine->get());
  OutOfCoreAdam async_adam(cfg, async_engine->get(), opts);

  const std::vector<std::string> names = {"w0", "w1", "w2"};
  for (size_t t = 0; t < names.size(); ++t) {
    const std::vector<float> init = RandomVec(kN, 31 + t);
    ASSERT_TRUE(sync_adam.Register(names[t], init).ok());
    ASSERT_TRUE(async_adam.Register(names[t], init).ok());
  }
  for (int step = 1; step <= kSteps; ++step) {
    for (size_t t = 0; t < names.size(); ++t) {
      const std::vector<Fp16> g = RandomGrads16(kN, 700 + 10 * step + t);
      ASSERT_TRUE(sync_adam.StepTensor(names[t], g).ok());
      ASSERT_TRUE(async_adam.StepTensor(names[t], g).ok());
    }
    // Post-drain reads while sibling tensors' epochs thrash the tier:
    // never stale, never a mixed old/new P32-m-v set.
    for (const std::string& name : names) {
      std::vector<float> m_sync, m_async;
      ASSERT_TRUE(sync_adam.FetchMasterParams(name, &m_sync).ok());
      ASSERT_TRUE(async_adam.FetchMasterParams(name, &m_async).ok());
      EXPECT_TRUE(BitwiseEqual(m_sync, m_async))
          << name << " stale at step " << step;
    }
  }
  for (const std::string& name : names) {
    int64_t step_sync = 0, step_async = 0;
    std::vector<float> p_s, m_s, v_s, p_a, m_a, v_a;
    ASSERT_TRUE(sync_adam.ExportState(name, &step_sync, &p_s, &m_s, &v_s).ok());
    ASSERT_TRUE(
        async_adam.ExportState(name, &step_async, &p_a, &m_a, &v_a).ok());
    EXPECT_EQ(step_sync, step_async);
    EXPECT_TRUE(BitwiseEqual(p_s, p_a)) << name;
    EXPECT_TRUE(BitwiseEqual(m_s, m_a)) << name;
    EXPECT_TRUE(BitwiseEqual(v_s, v_a)) << name;
  }
  EXPECT_GT(async_adam.stats().deferred_epochs, 0);
  EXPECT_EQ((*async_engine)->stats().Flow(FlowClass::kDeferredState).errors,
            0);
}

TEST(AsyncOptimTest, OversizedTensorsFallBackToDurableDrain) {
  // The tier is smaller than a single P32 blob, so the written state is
  // never admitted and no pin can be taken: every epoch must harden its
  // drain barrier to "store writes resolved" — otherwise each fetch
  // would read step N-1 from behind the throttled write channel.
  auto sync_engine = OpenEngine("small_sync");
  auto async_engine = OpenEngine("small_async", /*cache_bytes=*/1024,
                                 /*write_bandwidth=*/2e6);
  ASSERT_TRUE(sync_engine.ok());
  ASSERT_TRUE(async_engine.ok());
  AdamConfig cfg;
  cfg.lr = 1e-2;
  AsyncUpdateOptions opts;
  opts.async = true;
  opts.hot_fraction = 0.25;
  opts.chunk = 64;
  OutOfCoreAdam sync_adam(cfg, sync_engine->get());
  OutOfCoreAdam async_adam(cfg, async_engine->get(), opts);
  const std::vector<float> init = RandomVec(kN, 61);
  ASSERT_TRUE(sync_adam.Register("w", init).ok());
  ASSERT_TRUE(async_adam.Register("w", init).ok());
  for (int step = 1; step <= kSteps; ++step) {
    const std::vector<Fp16> g = RandomGrads16(kN, 800 + step);
    ASSERT_TRUE(sync_adam.StepTensor("w", g).ok());
    ASSERT_TRUE(async_adam.StepTensor("w", g).ok());
    std::vector<float> m_sync, m_async;
    ASSERT_TRUE(sync_adam.FetchMasterParams("w", &m_sync).ok());
    ASSERT_TRUE(async_adam.FetchMasterParams("w", &m_async).ok());
    EXPECT_TRUE(BitwiseEqual(m_sync, m_async)) << "stale at step " << step;
  }
  const AsyncUpdateEngine::Stats stats = async_adam.stats();
  EXPECT_GT(stats.deferred_epochs, 0);
  // Deterministic here: a 4*kN-byte blob can never be pinned in a
  // 1 KiB tier, so every deferred epoch took the durable fallback.
  EXPECT_EQ(stats.durable_fallback_epochs, stats.deferred_epochs);
}

TEST(AsyncOptimTest, ErrorsSurfaceInAsyncModeToo) {
  auto engine = OpenEngine("err");
  ASSERT_TRUE(engine.ok());
  AsyncUpdateOptions opts;
  opts.async = true;
  OutOfCoreAdam ooc(AdamConfig{}, engine->get(), opts);
  ASSERT_TRUE(ooc.Register("w", {1.0f}).ok());
  EXPECT_EQ(ooc.Register("w", {1.0f}).code(), StatusCode::kAlreadyExists);
  std::vector<Fp16> wrong(3);
  EXPECT_EQ(ooc.StepTensor("w", wrong).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ooc.StepTensor("nope", wrong).code(), StatusCode::kNotFound);
  EXPECT_EQ(ooc.DrainTensor("nope").code(), StatusCode::kNotFound);
  EXPECT_TRUE(ooc.DrainTensor("w").ok());
  EXPECT_TRUE(ooc.DrainAll().ok());
}

TEST(AsyncOptimTest, FailedRegisterRollsBackSoTheNameStaysUsable) {
  // Every write attempt fails, so Register's initial state writes give
  // up after the retry budget. The failed registration must not leave a
  // half-initialized entry behind: retrying must NOT report
  // kAlreadyExists, and the name must stay unknown to every other call.
  TransferOptions topts;
  topts.dir = TempDir("reg_rollback");
  topts.num_stripes = 2;
  topts.chunk_bytes = 4096;
  topts.fault.write_error_every = 1;
  auto engine = TransferEngine::Open(topts);
  ASSERT_TRUE(engine.ok());
  AsyncUpdateOptions opts;
  opts.async = true;
  OutOfCoreAdam ooc(AdamConfig{}, engine->get(), opts);
  EXPECT_EQ(ooc.Register("w", {1.0f, 2.0f}).code(), StatusCode::kUnavailable);
  EXPECT_EQ(ooc.Register("w", {1.0f, 2.0f}).code(), StatusCode::kUnavailable);
  std::vector<Fp16> g(2);
  EXPECT_EQ(ooc.StepTensor("w", g).code(), StatusCode::kNotFound);
  EXPECT_EQ(ooc.DrainTensor("w").code(), StatusCode::kNotFound);
}

// ---------- Trainer integration ----------

ag::TinyGptConfig SmallConfig() {
  ag::TinyGptConfig cfg;
  cfg.vocab_size = 48;
  cfg.seq_len = 8;
  cfg.hidden_dim = 24;
  cfg.num_heads = 2;
  cfg.num_layers = 2;
  return cfg;
}

void MakeBatch(Rng& rng, int64_t n, int64_t vocab, std::vector<int64_t>* ids,
               std::vector<int64_t>* targets) {
  ids->resize(n);
  targets->resize(n);
  for (int64_t i = 0; i < n; ++i) {
    (*ids)[i] = static_cast<int64_t>(rng.NextBelow(vocab));
    (*targets)[i] = ((*ids)[i] * 3 + 1) % vocab;
  }
}

std::vector<std::vector<float>> ExportAllState(RatelTrainer& trainer,
                                               ag::TinyGpt& model) {
  std::vector<std::vector<float>> out;
  for (auto& [name, var] : model.parameters()) {
    int64_t step = 0;
    std::vector<float> p32, m, v;
    EXPECT_TRUE(trainer.optimizer().ExportState(name, &step, &p32, &m, &v).ok())
        << name;
    out.push_back(std::move(p32));
    out.push_back(std::move(m));
    out.push_back(std::move(v));
  }
  return out;
}

struct TrainerRun {
  std::vector<float> losses;
  std::vector<std::vector<float>> state;
  StepStats last;
  TransferStats xfer;
};

TrainerRun TrainSmall(const std::string& tag, bool async, int steps) {
  ag::TinyGptConfig cfg = SmallConfig();
  ag::TinyGpt model(cfg, /*seed=*/44);
  TrainerOptions opts;
  opts.store_dir = TempDir(tag);
  opts.host_cache_bytes = 1 << 20;
  opts.async_optimizer = async;
  opts.async_hot_fraction = 0.25;
  opts.async_partition_chunk = 64;
  auto trainer = RatelTrainer::Create(&model, opts);
  EXPECT_TRUE(trainer.ok()) << trainer.status().ToString();
  TrainerRun run;
  Rng rng(5);
  std::vector<int64_t> ids, targets;
  for (int step = 0; step < steps; ++step) {
    MakeBatch(rng, 2 * cfg.seq_len, cfg.vocab_size, &ids, &targets);
    auto loss = (*trainer)->TrainStep(ids, targets, /*batch=*/2);
    EXPECT_TRUE(loss.ok()) << loss.status().ToString();
    run.losses.push_back(*loss);
  }
  run.last = (*trainer)->last_step_stats();
  run.state = ExportAllState(**trainer, model);
  run.xfer = (*trainer)->transfer_stats();
  return run;
}

TEST(AsyncOptimTrainerTest, AsyncTrainingIsBitwiseTheSyncTrajectory) {
  const TrainerRun sync = TrainSmall("tr_sync", /*async=*/false, 4);
  const TrainerRun async = TrainSmall("tr_async", /*async=*/true, 4);
  ASSERT_EQ(sync.losses.size(), async.losses.size());
  for (size_t i = 0; i < sync.losses.size(); ++i) {
    EXPECT_EQ(sync.losses[i], async.losses[i]) << "step " << i;
  }
  ASSERT_EQ(sync.state.size(), async.state.size());
  for (size_t i = 0; i < sync.state.size(); ++i) {
    EXPECT_TRUE(BitwiseEqual(sync.state[i], async.state[i]))
        << "state vector " << i << " diverged";
  }
  // The async run actually pipelined: per-step stats expose the split
  // and the engine carried real kDeferredState traffic.
  EXPECT_GT(async.last.deferred_epochs, 0);
  EXPECT_GT(async.last.tail_chunks, 0);
  EXPECT_GT(async.last.hot_chunks, 0);
  EXPECT_GT(async.xfer.Flow(FlowClass::kDeferredState).bytes_written, 0);
  // The sync run is untouched by the feature.
  EXPECT_EQ(sync.last.deferred_epochs, 0);
  EXPECT_EQ(sync.last.tail_chunks, 0);
  EXPECT_EQ(sync.xfer.Flow(FlowClass::kDeferredState).bytes_written, 0);
  EXPECT_EQ(sync.last.drain_stall_s, 0.0);
  EXPECT_EQ(sync.last.optimizer_overlap_s, 0.0);
}

TEST(AsyncOptimTrainerTest, CrashDuringPendingTailEpochRecoversViaCheckpoint) {
  constexpr int kTotalSteps = 5;
  constexpr int kCrashAfter = 3;
  const ag::TinyGptConfig cfg = SmallConfig();
  auto async_opts = [&](const std::string& tag) {
    TrainerOptions opts;
    opts.store_dir = TempDir(tag);
    opts.host_cache_bytes = 1 << 20;
    opts.async_optimizer = true;
    opts.async_hot_fraction = 0.25;
    opts.async_partition_chunk = 64;
    return opts;
  };

  // Reference: the async run that never crashes.
  std::vector<float> ref_losses;
  std::vector<std::vector<float>> ref_state;
  {
    ag::TinyGpt model(cfg, /*seed=*/44);
    auto trainer = RatelTrainer::Create(&model, async_opts("cr_ref"));
    ASSERT_TRUE(trainer.ok());
    Rng rng(5);
    std::vector<int64_t> ids, targets;
    for (int step = 0; step < kTotalSteps; ++step) {
      MakeBatch(rng, 2 * cfg.seq_len, cfg.vocab_size, &ids, &targets);
      auto loss = (*trainer)->TrainStep(ids, targets, 2);
      ASSERT_TRUE(loss.ok());
      ref_losses.push_back(*loss);
    }
    ref_state = ExportAllState(**trainer, model);
  }

  // Crashing run: checkpoint after step 3 (SaveCheckpoint drains every
  // pending epoch first — the barrier under test), then train one more
  // step and die while its tail epochs may still be in flight. The
  // abandoned store is lost; only the v2 checkpoint survives.
  const std::string ckpt_dir = TempDir("cr_ckpts");
  {
    ag::TinyGpt model(cfg, /*seed=*/44);
    auto trainer = RatelTrainer::Create(&model, async_opts("cr_crash"));
    ASSERT_TRUE(trainer.ok());
    Rng rng(5);
    std::vector<int64_t> ids, targets;
    for (int step = 0; step < kCrashAfter + 1; ++step) {
      MakeBatch(rng, 2 * cfg.seq_len, cfg.vocab_size, &ids, &targets);
      auto loss = (*trainer)->TrainStep(ids, targets, 2);
      ASSERT_TRUE(loss.ok());
      EXPECT_EQ(*loss, ref_losses[step]) << "pre-crash step " << step;
      if (step == kCrashAfter - 1) {
        ASSERT_TRUE((*trainer)->SaveCheckpoint(ckpt_dir).ok());
      }
    }
  }

  // Resumed run: fresh process, fresh store, async mode again.
  std::vector<float> resumed_losses;
  std::vector<std::vector<float>> resumed_state;
  {
    ag::TinyGpt model(cfg, /*seed=*/44);
    auto trainer = RatelTrainer::Create(&model, async_opts("cr_resume"));
    ASSERT_TRUE(trainer.ok());
    auto resumed_at = (*trainer)->RestoreLatestCheckpoint(ckpt_dir);
    ASSERT_TRUE(resumed_at.ok()) << resumed_at.status().ToString();
    EXPECT_EQ(*resumed_at, kCrashAfter);
    Rng rng(5);
    std::vector<int64_t> ids, targets;
    for (int step = 0; step < kCrashAfter; ++step) {
      MakeBatch(rng, 2 * cfg.seq_len, cfg.vocab_size, &ids, &targets);
    }
    for (int step = kCrashAfter; step < kTotalSteps; ++step) {
      MakeBatch(rng, 2 * cfg.seq_len, cfg.vocab_size, &ids, &targets);
      auto loss = (*trainer)->TrainStep(ids, targets, 2);
      ASSERT_TRUE(loss.ok());
      resumed_losses.push_back(*loss);
    }
    resumed_state = ExportAllState(**trainer, model);
  }

  ASSERT_EQ(resumed_losses.size(),
            static_cast<size_t>(kTotalSteps - kCrashAfter));
  for (size_t i = 0; i < resumed_losses.size(); ++i) {
    EXPECT_EQ(resumed_losses[i], ref_losses[kCrashAfter + i])
        << "post-resume step " << kCrashAfter + i;
  }
  ASSERT_EQ(resumed_state.size(), ref_state.size());
  for (size_t i = 0; i < ref_state.size(); ++i) {
    EXPECT_TRUE(BitwiseEqual(resumed_state[i], ref_state[i]))
        << "state vector " << i << " diverged";
  }
}

}  // namespace
}  // namespace ratel
