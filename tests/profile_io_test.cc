#include "core/profile_io.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <string>

#include "common/units.h"
#include "core/activation_planner.h"
#include "hw/catalog.h"
#include "model/transformer_config.h"

namespace ratel {
namespace {

std::string TempPath(const std::string& tag) {
  return ::testing::TempDir() + "/ratel_prof_" + tag + "_" +
         std::to_string(::getpid());
}

TEST(ProfileIoTest, SaveLoadRoundTrip) {
  auto cfg = LlmFromTableIV("13B");
  ASSERT_TRUE(cfg.ok());
  const WorkloadProfile wl = WorkloadProfile::Build(*cfg, 32);
  const ServerConfig server =
      catalog::EvaluationServer(catalog::Rtx4090(), 256 * kGiB, 12);
  auto hw = HardwareProfiler(server).Profile(wl);
  ASSERT_TRUE(hw.ok());

  const std::string path = TempPath("roundtrip.prf");
  ASSERT_TRUE(profile_io::Save(*hw, path).ok());
  auto loaded = profile_io::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_DOUBLE_EQ(loaded->thp_g, hw->thp_g);
  EXPECT_EQ(loaded->gpu_memory_bytes, hw->gpu_memory_bytes);
  EXPECT_DOUBLE_EQ(loaded->bw_g, hw->bw_g);
  EXPECT_DOUBLE_EQ(loaded->bw_s2m, hw->bw_s2m);
  EXPECT_DOUBLE_EQ(loaded->bw_m2s, hw->bw_m2s);
  EXPECT_DOUBLE_EQ(loaded->cpu_adam_rate, hw->cpu_adam_rate);
  EXPECT_DOUBLE_EQ(loaded->host_mem_bw, hw->host_mem_bw);
  EXPECT_EQ(loaded->mem_avail_m, hw->mem_avail_m);
  EXPECT_DOUBLE_EQ(loaded->t_f, hw->t_f);
  EXPECT_DOUBLE_EQ(loaded->t_b, hw->t_b);
  EXPECT_EQ(loaded->layer_forward_seconds, hw->layer_forward_seconds);
}

TEST(ProfileIoTest, LoadedProfileDrivesThePlannerIdentically) {
  auto cfg = LlmFromTableIV("6B");
  ASSERT_TRUE(cfg.ok());
  const WorkloadProfile wl = WorkloadProfile::Build(*cfg, 16);
  const ServerConfig server =
      catalog::EvaluationServer(catalog::Rtx4090(), 256 * kGiB, 6);
  auto hw = HardwareProfiler(server).Profile(wl);
  ASSERT_TRUE(hw.ok());
  const std::string path = TempPath("planner.prf");
  ASSERT_TRUE(profile_io::Save(*hw, path).ok());
  auto loaded = profile_io::Load(path);
  ASSERT_TRUE(loaded.ok());
  const CostModel a(*hw, wl);
  const CostModel b(*loaded, wl);
  const ActivationPlan pa = ActivationPlanner(a).Plan();
  const ActivationPlan pb = ActivationPlanner(b).Plan();
  EXPECT_EQ(pa.a_g2m, pb.a_g2m);
  EXPECT_DOUBLE_EQ(pa.predicted_iter_time, pb.predicted_iter_time);
}

TEST(ProfileIoTest, RejectsGarbage) {
  EXPECT_EQ(profile_io::Load(TempPath("missing")).status().code(),
            StatusCode::kNotFound);
  const std::string path = TempPath("garbage.prf");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite("NOTAPROFILE00000", 1, 16, f);
    std::fclose(f);
  }
  EXPECT_EQ(profile_io::Load(path).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(CatalogTest, NewGpusAreUsableEndToEnd) {
  auto cfg = LlmFromTableIV("6B");
  ASSERT_TRUE(cfg.ok());
  for (const GpuSpec& gpu : {catalog::Rtx4070Ti(), catalog::RtxA6000()}) {
    const ServerConfig s =
        catalog::EvaluationServer(gpu, 256 * kGiB, 12);
    const WorkloadProfile wl = WorkloadProfile::Build(*cfg, 4);
    auto hw = HardwareProfiler(s).Profile(wl);
    ASSERT_TRUE(hw.ok()) << gpu.name;
    EXPECT_EQ(hw->gpu_memory_bytes, gpu.device_memory_bytes);
  }
  // The 48 GiB A6000 hosts strictly larger working sets than the 12 GiB
  // 4070 Ti at the same batch.
  EXPECT_GT(catalog::RtxA6000().device_memory_bytes,
            catalog::Rtx4070Ti().device_memory_bytes);
}

}  // namespace
}  // namespace ratel
