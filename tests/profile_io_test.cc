#include "core/profile_io.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/units.h"
#include "core/activation_planner.h"
#include "hw/catalog.h"
#include "model/transformer_config.h"

namespace ratel {
namespace {

std::string TempPath(const std::string& tag) {
  return ::testing::TempDir() + "/ratel_prof_" + tag + "_" +
         std::to_string(::getpid());
}

TEST(ProfileIoTest, SaveLoadRoundTrip) {
  auto cfg = LlmFromTableIV("13B");
  ASSERT_TRUE(cfg.ok());
  const WorkloadProfile wl = WorkloadProfile::Build(*cfg, 32);
  const ServerConfig server =
      catalog::EvaluationServer(catalog::Rtx4090(), 256 * kGiB, 12);
  auto hw = HardwareProfiler(server).Profile(wl);
  ASSERT_TRUE(hw.ok());

  const std::string path = TempPath("roundtrip.prf");
  ASSERT_TRUE(profile_io::Save(*hw, path).ok());
  auto loaded = profile_io::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_DOUBLE_EQ(loaded->thp_g, hw->thp_g);
  EXPECT_EQ(loaded->gpu_memory_bytes, hw->gpu_memory_bytes);
  EXPECT_DOUBLE_EQ(loaded->bw_g, hw->bw_g);
  EXPECT_DOUBLE_EQ(loaded->bw_s2m, hw->bw_s2m);
  EXPECT_DOUBLE_EQ(loaded->bw_m2s, hw->bw_m2s);
  EXPECT_DOUBLE_EQ(loaded->cpu_adam_rate, hw->cpu_adam_rate);
  EXPECT_DOUBLE_EQ(loaded->host_mem_bw, hw->host_mem_bw);
  EXPECT_EQ(loaded->mem_avail_m, hw->mem_avail_m);
  EXPECT_DOUBLE_EQ(loaded->t_f, hw->t_f);
  EXPECT_DOUBLE_EQ(loaded->t_b, hw->t_b);
  EXPECT_EQ(loaded->layer_forward_seconds, hw->layer_forward_seconds);
}

TEST(ProfileIoTest, LoadedProfileDrivesThePlannerIdentically) {
  auto cfg = LlmFromTableIV("6B");
  ASSERT_TRUE(cfg.ok());
  const WorkloadProfile wl = WorkloadProfile::Build(*cfg, 16);
  const ServerConfig server =
      catalog::EvaluationServer(catalog::Rtx4090(), 256 * kGiB, 6);
  auto hw = HardwareProfiler(server).Profile(wl);
  ASSERT_TRUE(hw.ok());
  const std::string path = TempPath("planner.prf");
  ASSERT_TRUE(profile_io::Save(*hw, path).ok());
  auto loaded = profile_io::Load(path);
  ASSERT_TRUE(loaded.ok());
  const CostModel a(*hw, wl);
  const CostModel b(*loaded, wl);
  const ActivationPlan pa = ActivationPlanner(a).Plan();
  const ActivationPlan pb = ActivationPlanner(b).Plan();
  EXPECT_EQ(pa.a_g2m, pb.a_g2m);
  EXPECT_DOUBLE_EQ(pa.predicted_iter_time, pb.predicted_iter_time);
}

TEST(ProfileIoTest, CalibrationFieldsRoundTripInV2) {
  // The v2 extension carries the replanner's provenance: observed
  // activation compression and the window count the calibration was
  // drawn from. Both must survive the round trip exactly.
  HardwareProfile hw;
  hw.thp_g = 1e12;
  hw.gpu_memory_bytes = int64_t{24} << 30;
  hw.bw_g = 16e9;
  hw.bw_s2m = 3.2e9;
  hw.bw_m2s = 2.8e9;
  hw.cpu_adam_rate = 2e9;
  hw.host_mem_bw = 50e9;
  hw.mem_avail_m = int64_t{192} << 30;
  hw.t_f = 0.12;
  hw.t_b = 0.31;
  hw.observed_activation_compression = 1.75;
  hw.calibration_windows = 42;
  hw.layer_forward_seconds = {0.01, 0.02, 0.03};

  const std::string path = TempPath("calibrated.prf");
  ASSERT_TRUE(profile_io::Save(hw, path).ok());
  auto loaded = profile_io::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_DOUBLE_EQ(loaded->observed_activation_compression, 1.75);
  EXPECT_EQ(loaded->calibration_windows, 42);
  EXPECT_DOUBLE_EQ(loaded->bw_m2s, 2.8e9);
  EXPECT_EQ(loaded->layer_forward_seconds, hw.layer_forward_seconds);
}

TEST(ProfileIoTest, V1FileLoadsWithDefaultCalibration) {
  // Back-compat: a pre-calibration (v1) file — magic, version 1, the
  // scalar payload, then layer times, with *no* calibration payload —
  // must load with the nameplate defaults (ratio 1.0, zero windows).
  struct V1Scalars {  // mirrors profile_io's v1 ScalarPayload layout
    double thp_g;
    int64_t gpu_memory_bytes;
    double bw_g, bw_s2m, bw_m2s, cpu_adam_rate, host_mem_bw;
    int64_t mem_avail_m;
    double t_f, t_b;
  };
  static_assert(sizeof(V1Scalars) == 80, "v1 payload layout drifted");
  const std::string path = TempPath("v1.prf");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite("RATELPRF", 1, 8, f);
    const uint32_t version = 1;
    std::fwrite(&version, sizeof(version), 1, f);
    V1Scalars p{1e12, int64_t{24} << 30, 16e9,  3.2e9, 2.8e9,
                2e9,  50e9,              int64_t{96} << 30, 0.1, 0.2};
    std::fwrite(&p, sizeof(p), 1, f);
    const uint32_t layers = 2;
    std::fwrite(&layers, sizeof(layers), 1, f);
    const double times[2] = {0.04, 0.05};
    std::fwrite(times, sizeof(double), 2, f);
    std::fclose(f);
  }
  auto loaded = profile_io::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_DOUBLE_EQ(loaded->bw_s2m, 3.2e9);
  EXPECT_DOUBLE_EQ(loaded->t_b, 0.2);
  ASSERT_EQ(loaded->layer_forward_seconds.size(), 2u);
  EXPECT_DOUBLE_EQ(loaded->layer_forward_seconds[1], 0.05);
  EXPECT_DOUBLE_EQ(loaded->observed_activation_compression, 1.0);
  EXPECT_EQ(loaded->calibration_windows, 0);
}

TEST(ProfileIoTest, FutureVersionIsRejectedLoudly) {
  const std::string path = TempPath("v3.prf");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite("RATELPRF", 1, 8, f);
    const uint32_t version = 3;
    std::fwrite(&version, sizeof(version), 1, f);
    std::fclose(f);
  }
  auto loaded = profile_io::Load(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("version"), std::string::npos);
}

TEST(ProfileIoTest, CorruptCalibrationPayloadIsRejected) {
  // Save a valid v2 file, then stomp the calibration payload in place:
  // a non-positive compression ratio (offset 92: magic 8 + version 4 +
  // scalars 80) and, separately, a negative window count (offset 100)
  // must both fail validation instead of poisoning a later run's plan.
  HardwareProfile hw;
  hw.layer_forward_seconds = {0.01};
  for (const auto& [offset, name] :
       std::vector<std::pair<long, std::string>>{{92, "compression"},
                                                 {100, "windows"}}) {
    SCOPED_TRACE(name);
    const std::string path = TempPath("corrupt_" + name + ".prf");
    ASSERT_TRUE(profile_io::Save(hw, path).ok());
    {
      std::fstream f(path,
                     std::ios::in | std::ios::out | std::ios::binary);
      ASSERT_TRUE(f.good());
      f.seekp(offset);
      if (name == "compression") {
        const double bad = -1.0;
        f.write(reinterpret_cast<const char*>(&bad), sizeof(bad));
      } else {
        const int64_t bad = -5;
        f.write(reinterpret_cast<const char*>(&bad), sizeof(bad));
      }
    }
    auto loaded = profile_io::Load(path);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(loaded.status().message().find("calibration"),
              std::string::npos);
  }
}

TEST(ProfileIoTest, RejectsGarbage) {
  EXPECT_EQ(profile_io::Load(TempPath("missing")).status().code(),
            StatusCode::kNotFound);
  const std::string path = TempPath("garbage.prf");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite("NOTAPROFILE00000", 1, 16, f);
    std::fclose(f);
  }
  EXPECT_EQ(profile_io::Load(path).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(CatalogTest, NewGpusAreUsableEndToEnd) {
  auto cfg = LlmFromTableIV("6B");
  ASSERT_TRUE(cfg.ok());
  for (const GpuSpec& gpu : {catalog::Rtx4070Ti(), catalog::RtxA6000()}) {
    const ServerConfig s =
        catalog::EvaluationServer(gpu, 256 * kGiB, 12);
    const WorkloadProfile wl = WorkloadProfile::Build(*cfg, 4);
    auto hw = HardwareProfiler(s).Profile(wl);
    ASSERT_TRUE(hw.ok()) << gpu.name;
    EXPECT_EQ(hw->gpu_memory_bytes, gpu.device_memory_bytes);
  }
  // The 48 GiB A6000 hosts strictly larger working sets than the 12 GiB
  // 4070 Ti at the same batch.
  EXPECT_GT(catalog::RtxA6000().device_memory_bytes,
            catalog::Rtx4070Ti().device_memory_bytes);
}

}  // namespace
}  // namespace ratel
