// Crash-consistency + recovery-determinism suite (ctest labels:
// fault, determinism).
//
// Two layers of guarantee, both proven here:
//   1. Checkpoint files are *verifiable*: every shard carries a
//      CRC-32C, so truncation (a torn write at the filesystem level)
//      or bit rot surfaces as kDataLoss at load — never as a silent
//      resume from garbage — and LoadLatest falls back to the newest
//      checkpoint that still verifies.
//   2. Recovery is *bitwise-deterministic*: a run that crashes, falls
//      back past a torn checkpoint, and resumes produces exactly the
//      losses and master parameters of a run that never crashed.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <sys/stat.h>
#include <vector>

#include "autograd/transformer.h"
#include "common/rng.h"
#include "runtime/checkpoint.h"
#include "runtime/ratel_trainer.h"

namespace ratel {
namespace {

std::string TempDir(const std::string& tag) {
  return ::testing::TempDir() + "/ratel_crash_" + tag + "_" +
         std::to_string(::getpid());
}

bool BitwiseEqual(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

checkpoint::TensorState MakeTensor(const std::string& name, int64_t n,
                                   uint64_t seed, int64_t step) {
  Rng rng(seed);
  checkpoint::TensorState t;
  t.name = name;
  t.adam_step = step;
  t.p32.resize(n);
  t.m.resize(n);
  t.v.resize(n);
  for (int64_t i = 0; i < n; ++i) {
    t.p32[i] = static_cast<float>(rng.NextGaussian());
    t.m[i] = static_cast<float>(rng.NextGaussian()) * 0.1f;
    t.v[i] = static_cast<float>(rng.NextGaussian()) *
             static_cast<float>(rng.NextGaussian());
  }
  return t;
}

checkpoint::TrainState MakeState(int64_t step) {
  checkpoint::TrainState state;
  state.step = step;
  state.tensors.push_back(MakeTensor("wte", 257, 1 + step, step));
  state.tensors.push_back(MakeTensor("block0/attn.w", 96, 2 + step, step));
  state.tensors.push_back(MakeTensor("ln_f.bias", 1, 3 + step, step));
  return state;
}

int64_t FileSize(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0 ? st.st_size : -1;
}

void TruncateFile(const std::string& path, int64_t drop_bytes) {
  const int64_t size = FileSize(path);
  ASSERT_GT(size, drop_bytes);
  ASSERT_EQ(::truncate(path.c_str(), size - drop_bytes), 0);
}

void FlipByte(const std::string& path, int64_t offset) {
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, static_cast<long>(offset), SEEK_SET), 0);
  const int c = std::fgetc(f);
  ASSERT_NE(c, EOF);
  ASSERT_EQ(std::fseek(f, static_cast<long>(offset), SEEK_SET), 0);
  std::fputc(c ^ 0x40, f);
  ASSERT_EQ(std::fclose(f), 0);
}

// ---------- Checkpoint v2 format ----------

TEST(CheckpointV2Test, SaveStateLoadStateRoundTripsBitwise) {
  const std::string dir = TempDir("rt");
  ASSERT_TRUE(::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST);
  const std::string path = dir + "/state.ckpt";
  const checkpoint::TrainState state = MakeState(42);
  ASSERT_TRUE(checkpoint::SaveState(state, path).ok());
  // The shadow file was renamed away: only the published name remains.
  EXPECT_EQ(FileSize(path + ".tmp"), -1);

  auto loaded = checkpoint::LoadState(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->step, 42);
  ASSERT_EQ(loaded->tensors.size(), state.tensors.size());
  for (size_t i = 0; i < state.tensors.size(); ++i) {
    EXPECT_EQ(loaded->tensors[i].name, state.tensors[i].name);
    EXPECT_EQ(loaded->tensors[i].adam_step, state.tensors[i].adam_step);
    EXPECT_TRUE(BitwiseEqual(loaded->tensors[i].p32, state.tensors[i].p32));
    EXPECT_TRUE(BitwiseEqual(loaded->tensors[i].m, state.tensors[i].m));
    EXPECT_TRUE(BitwiseEqual(loaded->tensors[i].v, state.tensors[i].v));
  }
}

TEST(CheckpointV2Test, TruncatedFileIsDetectedAsDataLoss) {
  const std::string dir = TempDir("torn");
  ASSERT_TRUE(::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST);
  const std::string path = dir + "/state.ckpt";
  ASSERT_TRUE(checkpoint::SaveState(MakeState(7), path).ok());
  TruncateFile(path, /*drop_bytes=*/33);
  const auto loaded = checkpoint::LoadState(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
}

TEST(CheckpointV2Test, CorruptedPayloadByteFailsTheShardChecksum) {
  const std::string dir = TempDir("rot");
  ASSERT_TRUE(::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST);
  const std::string path = dir + "/state.ckpt";
  ASSERT_TRUE(checkpoint::SaveState(MakeState(7), path).ok());
  // Flip one bit in the middle of a tensor payload: the size and
  // structure still parse, only the CRC can catch it.
  FlipByte(path, FileSize(path) / 2);
  const auto loaded = checkpoint::LoadState(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
}

TEST(CheckpointV2Test, BadMagicIsDataLossNotAParseAccident) {
  const std::string dir = TempDir("magic");
  ASSERT_TRUE(::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST);
  const std::string path = dir + "/state.ckpt";
  ASSERT_TRUE(checkpoint::SaveState(MakeState(1), path).ok());
  FlipByte(path, 0);
  EXPECT_EQ(checkpoint::LoadState(path).status().code(),
            StatusCode::kDataLoss);
}

TEST(CheckpointV2Test, LoadLatestFallsBackPastATornNewestEpoch) {
  const std::string dir = TempDir("fallback");
  ASSERT_TRUE(checkpoint::SaveVersioned(dir, MakeState(3)).ok());
  ASSERT_TRUE(checkpoint::SaveVersioned(dir, MakeState(5)).ok());
  ASSERT_TRUE(checkpoint::SaveVersioned(dir, MakeState(9)).ok());
  // Power cut "during" epoch 9: the newest file is torn. LoadLatest
  // must detect it via checksums and resume from epoch 5 instead.
  TruncateFile(checkpoint::VersionedPath(dir, 9), /*drop_bytes=*/100);

  auto latest = checkpoint::LoadLatest(dir);
  ASSERT_TRUE(latest.ok()) << latest.status().ToString();
  EXPECT_EQ(latest->step, 5);

  // Tear epoch 5 too: fall all the way back to epoch 3.
  TruncateFile(checkpoint::VersionedPath(dir, 5), /*drop_bytes=*/1);
  latest = checkpoint::LoadLatest(dir);
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest->step, 3);
}

TEST(CheckpointV2Test, LoadLatestOnEmptyOrMissingDirIsNotFound) {
  const std::string dir = TempDir("empty");
  EXPECT_EQ(checkpoint::LoadLatest(dir).status().code(),
            StatusCode::kNotFound);
  // A stale dir left by a pid-recycled earlier run is fine: the test
  // only needs the directory to exist and hold no checkpoints.
  ASSERT_TRUE(::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST);
  EXPECT_EQ(checkpoint::LoadLatest(dir).status().code(),
            StatusCode::kNotFound);
}

// ---------- Trainer crash/recovery determinism ----------

ag::TinyGptConfig SmallConfig() {
  ag::TinyGptConfig cfg;
  cfg.vocab_size = 48;
  cfg.seq_len = 8;
  cfg.hidden_dim = 24;
  cfg.num_heads = 2;
  cfg.num_layers = 2;
  return cfg;
}

void MakeBatch(Rng& rng, int64_t n, int64_t vocab, std::vector<int64_t>* ids,
               std::vector<int64_t>* targets) {
  ids->resize(n);
  targets->resize(n);
  for (int64_t i = 0; i < n; ++i) {
    (*ids)[i] = static_cast<int64_t>(rng.NextBelow(vocab));
    (*targets)[i] = ((*ids)[i] * 3 + 1) % vocab;
  }
}

// Master optimizer state of every parameter, in registration order.
std::vector<std::vector<float>> ExportAllP32(RatelTrainer& trainer,
                                             ag::TinyGpt& model) {
  std::vector<std::vector<float>> out;
  for (auto& [name, var] : model.parameters()) {
    int64_t step = 0;
    std::vector<float> p32, m, v;
    EXPECT_TRUE(trainer.optimizer().ExportState(name, &step, &p32, &m, &v).ok())
        << name;
    out.push_back(std::move(p32));
    out.push_back(std::move(m));
    out.push_back(std::move(v));
  }
  return out;
}

constexpr int kTotalSteps = 6;
constexpr int kCrashAfter = 3;  // last durable checkpoint
constexpr int64_t kBatch = 2;

TEST(CrashRecoveryTest, ResumeAfterTornCheckpointIsBitwiseIdentical) {
  const ag::TinyGptConfig cfg = SmallConfig();

  // Reference: the run that never crashes.
  std::vector<float> ref_losses;
  std::vector<std::vector<float>> ref_state;
  {
    ag::TinyGpt model(cfg, /*seed=*/44);
    TrainerOptions opts;
    opts.store_dir = TempDir("ref_store");
    auto trainer = RatelTrainer::Create(&model, opts);
    ASSERT_TRUE(trainer.ok()) << trainer.status().ToString();
    Rng rng(5);
    std::vector<int64_t> ids, targets;
    for (int step = 0; step < kTotalSteps; ++step) {
      MakeBatch(rng, kBatch * cfg.seq_len, cfg.vocab_size, &ids, &targets);
      auto loss = (*trainer)->TrainStep(ids, targets, kBatch);
      ASSERT_TRUE(loss.ok()) << loss.status().ToString();
      ref_losses.push_back(*loss);
    }
    EXPECT_EQ((*trainer)->global_step(), kTotalSteps);
    ref_state = ExportAllP32(**trainer, model);
  }

  // Crashing run: checkpoint after step 3, train one more step whose
  // checkpoint is torn by the "power cut", then die.
  const std::string ckpt_dir = TempDir("ckpts");
  {
    ag::TinyGpt model(cfg, /*seed=*/44);
    TrainerOptions opts;
    opts.store_dir = TempDir("crash_store");
    auto trainer = RatelTrainer::Create(&model, opts);
    ASSERT_TRUE(trainer.ok());
    Rng rng(5);
    std::vector<int64_t> ids, targets;
    for (int step = 0; step < kCrashAfter + 1; ++step) {
      MakeBatch(rng, kBatch * cfg.seq_len, cfg.vocab_size, &ids, &targets);
      auto loss = (*trainer)->TrainStep(ids, targets, kBatch);
      ASSERT_TRUE(loss.ok());
      // The first kCrashAfter losses must already match the reference.
      if (step < static_cast<int>(ref_losses.size())) {
        EXPECT_EQ(*loss, ref_losses[step]) << "pre-crash step " << step;
      }
      if (step == kCrashAfter - 1 || step == kCrashAfter) {
        ASSERT_TRUE((*trainer)->SaveCheckpoint(ckpt_dir).ok());
      }
    }
  }
  // The step-4 checkpoint is torn; only the step-3 epoch verifies.
  TruncateFile(checkpoint::VersionedPath(ckpt_dir, kCrashAfter + 1),
               /*drop_bytes=*/64);

  // Resumed run: a fresh process (fresh model, fresh store) restores
  // the newest *valid* checkpoint and replays the remaining batches.
  std::vector<float> resumed_losses;
  std::vector<std::vector<float>> resumed_state;
  {
    ag::TinyGpt model(cfg, /*seed=*/44);
    TrainerOptions opts;
    opts.store_dir = TempDir("resume_store");
    auto trainer = RatelTrainer::Create(&model, opts);
    ASSERT_TRUE(trainer.ok());
    auto resumed_at = (*trainer)->RestoreLatestCheckpoint(ckpt_dir);
    ASSERT_TRUE(resumed_at.ok()) << resumed_at.status().ToString();
    EXPECT_EQ(*resumed_at, kCrashAfter);  // fell back past the torn epoch
    EXPECT_EQ((*trainer)->global_step(), kCrashAfter);

    // Replay the data stream to the crash point, then train on.
    Rng rng(5);
    std::vector<int64_t> ids, targets;
    for (int step = 0; step < kCrashAfter; ++step) {
      MakeBatch(rng, kBatch * cfg.seq_len, cfg.vocab_size, &ids, &targets);
    }
    for (int step = kCrashAfter; step < kTotalSteps; ++step) {
      MakeBatch(rng, kBatch * cfg.seq_len, cfg.vocab_size, &ids, &targets);
      auto loss = (*trainer)->TrainStep(ids, targets, kBatch);
      ASSERT_TRUE(loss.ok());
      resumed_losses.push_back(*loss);
    }
    EXPECT_EQ((*trainer)->global_step(), kTotalSteps);
    resumed_state = ExportAllP32(**trainer, model);
  }

  // Post-resume losses are bitwise what the uninterrupted run produced.
  ASSERT_EQ(resumed_losses.size(),
            static_cast<size_t>(kTotalSteps - kCrashAfter));
  for (size_t i = 0; i < resumed_losses.size(); ++i) {
    EXPECT_EQ(resumed_losses[i], ref_losses[kCrashAfter + i])
        << "post-resume step " << kCrashAfter + i;
  }
  // And so is the full optimizer state (P32 + both moments, every
  // tensor): the crash is invisible to the training trajectory.
  ASSERT_EQ(resumed_state.size(), ref_state.size());
  for (size_t i = 0; i < ref_state.size(); ++i) {
    EXPECT_TRUE(BitwiseEqual(resumed_state[i], ref_state[i]))
        << "state vector " << i << " diverged";
  }
}

TEST(CrashRecoveryTest, RestoreWithoutAnyValidCheckpointIsNotFound) {
  ag::TinyGpt model(SmallConfig(), /*seed=*/3);
  TrainerOptions opts;
  opts.store_dir = TempDir("nf_store");
  auto trainer = RatelTrainer::Create(&model, opts);
  ASSERT_TRUE(trainer.ok());
  const auto resumed =
      (*trainer)->RestoreLatestCheckpoint(TempDir("nf_ckpts"));
  ASSERT_FALSE(resumed.ok());
  EXPECT_EQ(resumed.status().code(), StatusCode::kNotFound);
  EXPECT_EQ((*trainer)->global_step(), 0);
}

}  // namespace
}  // namespace ratel
