#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>

#include "common/fp16.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/table_printer.h"
#include "common/units.h"

namespace ratel {
namespace {

// ---------- Status / Result ----------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::OutOfMemory("pool full");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOutOfMemory);
  EXPECT_EQ(s.message(), "pool full");
  EXPECT_EQ(s.ToString(), "OutOfMemory: pool full");
}

TEST(StatusTest, EveryCodeHasAName) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kOutOfMemory,
        StatusCode::kOutOfRange, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kFailedPrecondition,
        StatusCode::kUnimplemented, StatusCode::kIoError,
        StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeName(code), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseAssignOrReturn(int x, int* out) {
  RATEL_ASSIGN_OR_RETURN(int half, Half(x));
  *out = half;
  return Status::Ok();
}

TEST(ResultTest, AssignOrReturnPropagates) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(8, &out).ok());
  EXPECT_EQ(out, 4);
  EXPECT_EQ(UseAssignOrReturn(7, &out).code(), StatusCode::kInvalidArgument);
}

// ---------- Units ----------

TEST(UnitsTest, BinaryConstants) {
  EXPECT_EQ(kKiB, 1024);
  EXPECT_EQ(kGiB, int64_t{1} << 30);
  EXPECT_EQ(kTiB, 1024 * kGiB);
}

TEST(UnitsTest, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(2.5 * kGiB), "2.50 GiB");
  EXPECT_EQ(FormatBytes(1.5 * kTiB), "1.50 TiB");
}

TEST(UnitsTest, FormatBandwidth) {
  EXPECT_EQ(FormatBandwidth(21e9), "21.0 GB/s");
  EXPECT_EQ(FormatBandwidth(3.5e6), "3.50 MB/s");
}

TEST(UnitsTest, FormatSeconds) {
  EXPECT_EQ(FormatSeconds(12.0), "12.0 s");
  EXPECT_EQ(FormatSeconds(0.215), "215 ms");
  EXPECT_EQ(FormatSeconds(31e-6), "31.0 us");
}

// ---------- Rng ----------

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, SeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.NextU64() == b.NextU64();
  EXPECT_LT(equal, 4);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.NextBelow(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all buckets hit
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(42);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextGaussian();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

// ---------- Fp16 ----------

TEST(Fp16Test, ExactValuesRoundTrip) {
  for (float v : {0.0f, 1.0f, -1.0f, 0.5f, 2.0f, 1024.0f, -0.25f, 65504.0f}) {
    EXPECT_EQ(HalfToFloat(FloatToHalf(v)), v) << v;
  }
}

TEST(Fp16Test, RoundTripErrorBounded) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const float v = static_cast<float>(rng.NextDouble(-100.0, 100.0));
    const float r = HalfToFloat(FloatToHalf(v));
    // Half has a 10-bit mantissa: relative error <= 2^-11.
    EXPECT_LE(std::fabs(r - v), std::fabs(v) * (1.0f / 2048.0f) + 1e-7f) << v;
  }
}

TEST(Fp16Test, OverflowSaturatesToInf) {
  EXPECT_TRUE(std::isinf(HalfToFloat(FloatToHalf(1e20f))));
  EXPECT_TRUE(std::isinf(HalfToFloat(FloatToHalf(-1e20f))));
  EXPECT_LT(HalfToFloat(FloatToHalf(-1e20f)), 0.0f);
}

TEST(Fp16Test, SubnormalsPreserved) {
  const float tiny = 1e-5f;  // subnormal in fp16 (below 2^-14)
  const float r = HalfToFloat(FloatToHalf(tiny));
  EXPECT_NEAR(r, tiny, 1e-6f);
}

TEST(Fp16Test, UnderflowToZero) {
  EXPECT_EQ(HalfToFloat(FloatToHalf(1e-10f)), 0.0f);
}

TEST(Fp16Test, NanPropagates) {
  EXPECT_TRUE(std::isnan(HalfToFloat(FloatToHalf(NAN))));
}

// ---------- TablePrinter ----------

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"A", "BBBB"});
  t.AddRow({"123", "4"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("A    BBBB"), std::string::npos);
  EXPECT_NE(s.find("123  4"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(TablePrinterTest, CellFormatting) {
  EXPECT_EQ(TablePrinter::Cell(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Cell(int64_t{42}), "42");
}

}  // namespace
}  // namespace ratel
