#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "mem/memory_pool.h"
#include "mem/tier_cache.h"
#include "storage/block_store.h"
#include "storage/throttled_channel.h"

namespace ratel {
namespace {

std::string TempDir(const std::string& tag) {
  return ::testing::TempDir() + "/ratel_store_" + tag + "_" +
         std::to_string(::getpid());
}

// ---------- MemoryPool ----------

TEST(MemoryPoolTest, AllocateAndFree) {
  MemoryPool pool("gpu", 100);
  auto a = pool.Allocate(60, "weights");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(pool.used(), 60);
  EXPECT_EQ(pool.available(), 40);
  ASSERT_TRUE(pool.Free(*a).ok());
  EXPECT_EQ(pool.used(), 0);
}

TEST(MemoryPoolTest, OomWhenOverCapacity) {
  MemoryPool pool("gpu", 100);
  ASSERT_TRUE(pool.Allocate(80, "a").ok());
  auto b = pool.Allocate(30, "b");
  EXPECT_FALSE(b.ok());
  EXPECT_EQ(b.status().code(), StatusCode::kOutOfMemory);
  EXPECT_EQ(pool.used(), 80);  // failed allocation does not leak budget
}

TEST(MemoryPoolTest, PeakTracksHighWatermark) {
  MemoryPool pool("host", 1000);
  auto a = pool.Allocate(400, "a");
  auto b = pool.Allocate(500, "b");
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(pool.Free(*a).ok());
  EXPECT_EQ(pool.used(), 500);
  EXPECT_EQ(pool.peak_used(), 900);
  pool.ResetPeak();
  EXPECT_EQ(pool.peak_used(), 500);
}

TEST(MemoryPoolTest, DoubleFreeIsNotFound) {
  MemoryPool pool("p", 10);
  auto a = pool.Allocate(5, "x");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(pool.Free(*a).ok());
  EXPECT_EQ(pool.Free(*a).code(), StatusCode::kNotFound);
}

TEST(MemoryPoolTest, FreeAllResets) {
  MemoryPool pool("p", 100);
  ASSERT_TRUE(pool.Allocate(10, "a").ok());
  ASSERT_TRUE(pool.Allocate(20, "b").ok());
  pool.FreeAll();
  EXPECT_EQ(pool.used(), 0);
  EXPECT_EQ(pool.num_live_allocations(), 0);
  EXPECT_TRUE(pool.Allocate(100, "c").ok());
}

TEST(MemoryPoolTest, NegativeAllocationRejected) {
  MemoryPool pool("p", 100);
  EXPECT_EQ(pool.Allocate(-1, "bad").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(MemoryPoolTest, ZeroCapacityPoolRejectsEverythingButZero) {
  MemoryPool pool("empty", 0);
  EXPECT_TRUE(pool.Allocate(0, "nothing").ok());
  EXPECT_FALSE(pool.Allocate(1, "something").ok());
}

// ---------- BlockStore ----------

TEST(BlockStoreTest, PutGetRoundTrip) {
  auto store = BlockStore::Open(TempDir("rt"), 4, 1024);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  Rng rng(1);
  std::vector<uint8_t> data(10000);
  for (auto& b : data) b = static_cast<uint8_t>(rng.NextU64());
  ASSERT_TRUE((*store)->Put("t1", data.data(), data.size()).ok());
  std::vector<uint8_t> out(data.size());
  ASSERT_TRUE((*store)->Get("t1", out.data(), out.size()).ok());
  EXPECT_EQ(out, data);
}

TEST(BlockStoreTest, StripesAcrossFiles) {
  auto store = BlockStore::Open(TempDir("stripe"), 4, 100);
  ASSERT_TRUE(store.ok());
  std::vector<uint8_t> data(1000, 0xAB);
  ASSERT_TRUE((*store)->Put("big", data.data(), data.size()).ok());
  EXPECT_EQ((*store)->allocated_bytes(), 1000);
  EXPECT_EQ((*store)->num_stripes(), 4);
}

TEST(BlockStoreTest, OverwriteSameSizeInPlace) {
  auto store = BlockStore::Open(TempDir("ow"), 2, 64);
  ASSERT_TRUE(store.ok());
  std::vector<uint8_t> a(500, 1), b(500, 2);
  ASSERT_TRUE((*store)->Put("k", a.data(), a.size()).ok());
  const int64_t alloc1 = (*store)->allocated_bytes();
  ASSERT_TRUE((*store)->Put("k", b.data(), b.size()).ok());
  EXPECT_EQ((*store)->allocated_bytes(), alloc1);  // no new extents
  std::vector<uint8_t> out(500);
  ASSERT_TRUE((*store)->Get("k", out.data(), out.size()).ok());
  EXPECT_EQ(out, b);
}

TEST(BlockStoreTest, SizeChangingRewriteReallocates) {
  auto store = BlockStore::Open(TempDir("resize"), 2, 64);
  ASSERT_TRUE(store.ok());
  std::vector<uint8_t> a(100, 1), b(300, 2);
  ASSERT_TRUE((*store)->Put("k", a.data(), a.size()).ok());
  ASSERT_TRUE((*store)->Put("k", b.data(), b.size()).ok());
  auto size = (*store)->BlobSize("k");
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 300);
  std::vector<uint8_t> out(300);
  ASSERT_TRUE((*store)->Get("k", out.data(), out.size()).ok());
  EXPECT_EQ(out, b);
}

TEST(BlockStoreTest, GetMissingIsNotFound) {
  auto store = BlockStore::Open(TempDir("miss"), 1, 64);
  ASSERT_TRUE(store.ok());
  uint8_t buf[8];
  EXPECT_EQ((*store)->Get("nope", buf, 8).code(), StatusCode::kNotFound);
  EXPECT_FALSE((*store)->Contains("nope"));
}

TEST(BlockStoreTest, GetWrongSizeRejected) {
  auto store = BlockStore::Open(TempDir("size"), 1, 64);
  ASSERT_TRUE(store.ok());
  uint8_t data[16] = {0};
  ASSERT_TRUE((*store)->Put("k", data, 16).ok());
  uint8_t buf[8];
  EXPECT_EQ((*store)->Get("k", buf, 8).code(), StatusCode::kInvalidArgument);
}

TEST(BlockStoreTest, DeleteRemovesKey) {
  auto store = BlockStore::Open(TempDir("del"), 1, 64);
  ASSERT_TRUE(store.ok());
  uint8_t data[4] = {1, 2, 3, 4};
  ASSERT_TRUE((*store)->Put("k", data, 4).ok());
  EXPECT_EQ((*store)->num_blobs(), 1);
  ASSERT_TRUE((*store)->Delete("k").ok());
  EXPECT_EQ((*store)->num_blobs(), 0);
  EXPECT_EQ((*store)->Delete("k").code(), StatusCode::kNotFound);
}

TEST(BlockStoreTest, EmptyBlobAllowed) {
  auto store = BlockStore::Open(TempDir("empty"), 2, 64);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Put("nil", nullptr, 0).ok());
  EXPECT_TRUE((*store)->Contains("nil"));
  ASSERT_TRUE((*store)->Get("nil", nullptr, 0).ok());
}

TEST(BlockStoreTest, ManyKeysSurviveInterleavedWrites) {
  auto store = BlockStore::Open(TempDir("many"), 3, 128);
  ASSERT_TRUE(store.ok());
  Rng rng(9);
  std::vector<std::vector<uint8_t>> blobs(50);
  for (int i = 0; i < 50; ++i) {
    blobs[i].resize(64 + rng.NextBelow(512));
    for (auto& b : blobs[i]) b = static_cast<uint8_t>(rng.NextU64());
    ASSERT_TRUE((*store)
                    ->Put("k" + std::to_string(i), blobs[i].data(),
                          static_cast<int64_t>(blobs[i].size()))
                    .ok());
  }
  for (int i = 0; i < 50; ++i) {
    std::vector<uint8_t> out(blobs[i].size());
    ASSERT_TRUE((*store)
                    ->Get("k" + std::to_string(i), out.data(),
                          static_cast<int64_t>(out.size()))
                    .ok());
    EXPECT_EQ(out, blobs[i]) << i;
  }
}

TEST(BlockStoreTest, ConcurrentDistinctKeys) {
  auto store = BlockStore::Open(TempDir("conc"), 4, 256);
  ASSERT_TRUE(store.ok());
  constexpr int kThreads = 4, kKeysPerThread = 20;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(100 + t);
      for (int i = 0; i < kKeysPerThread; ++i) {
        std::vector<uint8_t> data(300 + rng.NextBelow(300));
        for (auto& b : data) b = static_cast<uint8_t>(rng.NextU64());
        const std::string key =
            "t" + std::to_string(t) + "_k" + std::to_string(i);
        if (!(*store)
                 ->Put(key, data.data(), static_cast<int64_t>(data.size()))
                 .ok()) {
          ++failures;
        }
        std::vector<uint8_t> out(data.size());
        if (!(*store)
                 ->Get(key, out.data(), static_cast<int64_t>(out.size()))
                 .ok()) {
          ++failures;
        }
        if (out != data) ++failures;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ((*store)->num_blobs(), kThreads * kKeysPerThread);
}

TEST(BlockStoreTest, InvalidConfigRejected) {
  EXPECT_FALSE(BlockStore::Open(TempDir("bad1"), 0, 64).ok());
  EXPECT_FALSE(BlockStore::Open(TempDir("bad2"), 2, 0).ok());
}

TEST(BlockStoreTest, ByteCountersTrackSuccessfulOps) {
  auto store = BlockStore::Open(TempDir("bytes"), 2, 64);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ((*store)->total_bytes_read(), 0);
  EXPECT_EQ((*store)->total_bytes_written(), 0);
  std::vector<uint8_t> data(300, 0x42);
  ASSERT_TRUE((*store)->Put("a", data.data(), 300).ok());
  ASSERT_TRUE((*store)->Put("b", data.data(), 200).ok());
  EXPECT_EQ((*store)->total_bytes_written(), 500);
  std::vector<uint8_t> out(300);
  ASSERT_TRUE((*store)->Get("a", out.data(), 300).ok());
  EXPECT_EQ((*store)->total_bytes_read(), 300);
  // Failed operations do not count.
  EXPECT_FALSE((*store)->Get("missing", out.data(), 300).ok());
  EXPECT_FALSE((*store)->Get("a", out.data(), 7).ok());  // wrong size
  EXPECT_EQ((*store)->total_bytes_read(), 300);
  EXPECT_EQ((*store)->total_bytes_written(), 500);
}

// ---------- TierCache counters / engine-facing probes ----------

TEST(TierCacheTest, CountersReconcileWithStoreTraffic) {
  auto store = BlockStore::Open(TempDir("tc_recon"), 2, 64);
  ASSERT_TRUE(store.ok());
  TierCache cache(store->get(), 1 << 20);
  std::vector<uint8_t> data(400, 0x11);
  std::vector<uint8_t> out(400);
  int64_t issued_read_bytes = 0;
  ASSERT_TRUE(cache.Put("a", data.data(), 400).ok());
  ASSERT_TRUE(cache.Put("b", data.data(), 400).ok());
  ASSERT_TRUE(cache.Get("a", out.data(), 400).ok());  // hit
  issued_read_bytes += 400;
  cache.Invalidate("b");
  ASSERT_TRUE(cache.Get("b", out.data(), 400).ok());  // miss -> store
  issued_read_bytes += 400;
  ASSERT_TRUE(cache.Get("b", out.data(), 400).ok());  // promoted: hit
  issued_read_bytes += 400;
  const TierCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 2);
  EXPECT_EQ(stats.misses, 1);
  // Reconciliation invariants: hit + miss bytes cover every issued
  // read; when all reads go through the cache, the store served
  // exactly the miss bytes.
  EXPECT_EQ(stats.hit_bytes + stats.miss_bytes, issued_read_bytes);
  EXPECT_EQ(stats.miss_bytes, (*store)->total_bytes_read());
  EXPECT_EQ(stats.hit_bytes, 2 * 400);
}

TEST(TierCacheTest, TryGetProbesWithoutStoreIo) {
  auto store = BlockStore::Open(TempDir("tc_try"), 2, 64);
  ASSERT_TRUE(store.ok());
  TierCache cache(store->get(), 1 << 20);
  std::vector<uint8_t> data(128, 0x77);
  // Blob only in the store: TryGet must miss and must NOT touch it.
  ASSERT_TRUE((*store)->Put("cold", data.data(), 128).ok());
  std::vector<uint8_t> out(128, 0);
  EXPECT_FALSE(cache.TryGet("cold", out.data(), 128));
  EXPECT_EQ((*store)->total_bytes_read(), 0);
  EXPECT_EQ(cache.stats().misses, 1);
  EXPECT_EQ(cache.stats().miss_bytes, 128);
  // Admit inserts the DRAM copy without writing the store.
  const int64_t written_before = (*store)->total_bytes_written();
  cache.Admit("cold", data.data(), 128);
  EXPECT_EQ((*store)->total_bytes_written(), written_before);
  EXPECT_TRUE(cache.TryGet("cold", out.data(), 128));
  EXPECT_EQ(out, data);
  EXPECT_EQ((*store)->total_bytes_read(), 0);  // hit: still no store I/O
  EXPECT_EQ(cache.stats().hits, 1);
  EXPECT_EQ(cache.stats().hit_bytes, 128);
  // A size mismatch is a miss, not an error.
  EXPECT_FALSE(cache.TryGet("cold", out.data(), 64));
}

TEST(TierCacheTest, PinnedEntriesSurviveEvictionPressure) {
  auto store = BlockStore::Open(TempDir("tc_pin"), 2, 64);
  ASSERT_TRUE(store.ok());
  TierCache cache(store->get(), 1024);  // fits ~2 entries of 400 B
  std::vector<uint8_t> data(400, 0x33);
  cache.Admit("pinned", data.data(), 400);
  ASSERT_TRUE(cache.Pin("pinned"));
  EXPECT_EQ(cache.stats().pinned_bytes, 400);
  // Flood the tier: the unpinned entries churn, the pinned one stays.
  for (int i = 0; i < 8; ++i) {
    cache.Admit("churn" + std::to_string(i), data.data(), 400);
  }
  std::vector<uint8_t> out(400);
  EXPECT_TRUE(cache.TryGet("pinned", out.data(), 400));
  EXPECT_EQ(out, data);
  EXPECT_GT(cache.stats().evictions, 0);
  // Unpinned, it is evictable again (LRU order: push it to the back by
  // admitting fresh entries).
  cache.Unpin("pinned");
  EXPECT_EQ(cache.stats().pinned_bytes, 0);
  for (int i = 0; i < 8; ++i) {
    cache.Admit("churn2_" + std::to_string(i), data.data(), 400);
  }
  EXPECT_FALSE(cache.TryGet("pinned", out.data(), 400));
}

TEST(TierCacheTest, PinContractEdges) {
  auto store = BlockStore::Open(TempDir("tc_pin2"), 2, 64);
  ASSERT_TRUE(store.ok());
  TierCache cache(store->get(), 512);
  std::vector<uint8_t> v1(200, 0x01), v2(200, 0x02), big(600, 0x09);
  // Pin of a non-resident key fails (never admitted / oversized).
  EXPECT_FALSE(cache.Pin("absent"));
  cache.Admit("huge", big.data(), 600);  // larger than the tier
  EXPECT_FALSE(cache.Pin("huge"));
  // Overwriting a pinned key keeps the pin on the fresher value.
  cache.Admit("k", v1.data(), 200);
  ASSERT_TRUE(cache.Pin("k"));
  cache.Admit("k", v2.data(), 200);
  std::vector<uint8_t> out(200);
  for (int i = 0; i < 8; ++i) {
    cache.Admit("fill" + std::to_string(i), v1.data(), 200);
  }
  ASSERT_TRUE(cache.TryGet("k", out.data(), 200));
  EXPECT_EQ(out, v2);
  EXPECT_EQ(cache.stats().pinned_bytes, 200);
  // Pins nest: one Unpin leaves the entry pinned.
  ASSERT_TRUE(cache.Pin("k"));
  cache.Unpin("k");
  for (int i = 0; i < 8; ++i) {
    cache.Admit("fill2_" + std::to_string(i), v1.data(), 200);
  }
  EXPECT_TRUE(cache.TryGet("k", out.data(), 200));
  // Invalidate drops even a pinned entry (a Delete supersedes the pin);
  // the late Unpin is a harmless no-op.
  cache.Invalidate("k");
  EXPECT_EQ(cache.stats().pinned_bytes, 0);
  EXPECT_FALSE(cache.TryGet("k", out.data(), 200));
  cache.Unpin("k");
}

// ---------- ThrottledChannel ----------

TEST(ThrottledChannelTest, EnforcesRate) {
  // 10 MB at 100 MB/s should take >= ~100 ms.
  ThrottledChannel ch("test", 100e6);
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < 10; ++i) ch.Consume(1'000'000);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_GE(elapsed, 0.08);
  EXPECT_EQ(ch.total_bytes(), 10'000'000);
}

TEST(ThrottledChannelTest, ZeroBytesFree) {
  ThrottledChannel ch("test", 1.0);  // 1 byte/s
  const auto t0 = std::chrono::steady_clock::now();
  ch.Consume(0);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(elapsed, 0.05);
}

TEST(ThrottledChannelTest, ConcurrentConsumersShareBandwidth) {
  ThrottledChannel ch("shared", 50e6);  // 50 MB/s
  const auto t0 = std::chrono::steady_clock::now();
  std::thread a([&] { ch.Consume(2'500'000); });
  std::thread b([&] { ch.Consume(2'500'000); });
  a.join();
  b.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  // 5 MB total at 50 MB/s >= ~100 ms regardless of interleaving.
  EXPECT_GE(elapsed, 0.08);
}

}  // namespace
}  // namespace ratel
