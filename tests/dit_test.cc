#include "autograd/dit.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "autograd/ops.h"
#include "common/rng.h"

namespace ratel::ag {
namespace {

TinyDitConfig SmallConfig() {
  TinyDitConfig cfg;
  cfg.patch_dim = 4;
  cfg.seq_len = 6;
  cfg.hidden_dim = 16;
  cfg.num_heads = 2;
  cfg.num_layers = 2;
  return cfg;
}

TEST(FullAttentionTest, EveryTokenSeesEveryOther) {
  // Unlike the causal op, perturbing the last token changes earlier
  // outputs.
  Rng rng(1);
  std::vector<float> qkv(4 * 18);
  for (auto& v : qkv) v = static_cast<float>(rng.NextGaussian());
  Variable a = Variable::Constant({4, 18}, qkv);
  Variable out_a = FullSelfAttention(a, 1, 4, 2);
  for (int j = 0; j < 18; ++j) qkv[3 * 18 + j] += 5.0f;
  Variable b = Variable::Constant({4, 18}, qkv);
  Variable out_b = FullSelfAttention(b, 1, 4, 2);
  bool any_changed = false;
  for (int col = 0; col < 6; ++col) {
    any_changed |= out_a.value()[col] != out_b.value()[col];  // row 0
  }
  EXPECT_TRUE(any_changed);
}

TEST(FullAttentionTest, GradientMatchesFiniteDifference) {
  Rng rng(2);
  std::vector<float> base(3 * 12);
  for (auto& v : base) v = static_cast<float>(rng.NextGaussian() * 0.5);
  auto loss_of = [&](const std::vector<float>& data) {
    Variable p = Variable::Parameter({3, 12}, data, "qkv");
    Variable out = FullSelfAttention(p, 1, 3, 2);
    return MeanSquaredError(out, std::vector<float>(12, 0.1f));
  };
  Variable p = Variable::Parameter({3, 12}, base, "qkv");
  Variable loss = MeanSquaredError(FullSelfAttention(p, 1, 3, 2),
                                   std::vector<float>(12, 0.1f));
  loss.Backward();
  const float eps = 1e-2f;
  for (size_t i : {0u, 7u, 20u, 35u}) {
    std::vector<float> plus = base, minus = base;
    plus[i] += eps;
    minus[i] -= eps;
    const float numeric =
        (loss_of(plus).value()[0] - loss_of(minus).value()[0]) / (2 * eps);
    EXPECT_NEAR(p.grad()[i], numeric,
                0.08f * std::max(1.0f, std::fabs(numeric)))
        << i;
  }
}

TEST(TinyDitTest, DeterministicConstruction) {
  TinyDit a(SmallConfig(), 5);
  TinyDit b(SmallConfig(), 5);
  EXPECT_EQ(a.NumParameters(), b.NumParameters());
  EXPECT_EQ(a.parameters()[3].second.value(),
            b.parameters()[3].second.value());
  EXPECT_EQ(a.BlockParameterNames(0).size(), 12u);
}

TEST(TinyDitTest, PredictShapeMatchesInput) {
  TinyDit model(SmallConfig(), 6);
  const auto cfg = SmallConfig();
  std::vector<float> in(2 * cfg.seq_len * cfg.patch_dim, 0.3f);
  Variable out = model.Predict(in, 2);
  EXPECT_EQ(out.shape(),
            (std::vector<int64_t>{2 * cfg.seq_len, cfg.patch_dim}));
}

TEST(TinyDitTest, LearnsToDenoise) {
  const auto cfg = SmallConfig();
  TinyDit model(cfg, 7);
  Rng rng(9);
  const int64_t batch = 4;
  const int64_t n = batch * cfg.seq_len * cfg.patch_dim;
  std::vector<float> clean(n), noise(n), noisy(n);
  float first = 0.0f, last = 0.0f;
  for (int step = 0; step < 60; ++step) {
    for (int64_t i = 0; i < n; ++i) {
      const int64_t pos = (i / cfg.patch_dim) % cfg.seq_len;
      clean[i] = std::sin(0.9f * pos + i % cfg.patch_dim);
      noise[i] = static_cast<float>(rng.NextGaussian());
      noisy[i] = clean[i] + 0.5f * noise[i];
    }
    model.ZeroGrads();
    Variable loss = model.Loss(noisy, noise, batch);
    loss.Backward();
    if (step == 0) first = loss.value()[0];
    last = loss.value()[0];
    for (auto& [name, p] : model.parameters()) {
      auto& val = p.mutable_value();
      const auto& g = p.grad();
      for (size_t i = 0; i < val.size(); ++i) val[i] -= 0.05f * g[i];
    }
  }
  EXPECT_LT(last, first * 0.6f) << first << " -> " << last;
}

}  // namespace
}  // namespace ratel::ag
