// Multi-tenant JobManager: admission control against the feasibility
// budgets, the single-job == bare-trainer equivalence, queue/reject
// verdicts, graceful preemption/resume, env overlays, and per-tenant
// accounting reconciliation across concurrent jobs.

#include "runtime/job_manager.h"

#include <gtest/gtest.h>
#include <stdlib.h>
#include <unistd.h>

#include <condition_variable>
#include <mutex>
#include <string>
#include <vector>

#include "common/rng.h"
#include "runtime/ratel_trainer.h"

namespace ratel {
namespace {

std::string TempDir(const std::string& tag) {
  return ::testing::TempDir() + "/ratel_jobmgr_" + tag + "_" +
         std::to_string(::getpid());
}

ag::TinyGptConfig SmallConfig() {
  ag::TinyGptConfig cfg;
  cfg.vocab_size = 48;
  cfg.seq_len = 8;
  cfg.hidden_dim = 24;
  cfg.num_heads = 2;
  cfg.num_layers = 2;
  return cfg;
}

JobManager::Options ManagerOptions(const std::string& tag) {
  JobManager::Options options;
  options.engine.dir = TempDir(tag);
  options.engine.num_stripes = 2;
  options.engine.chunk_bytes = 1 << 16;
  options.engine.io_workers = 2;
  return options;
}

// Deterministic batch stream both the manager jobs and the bare
// trainer replay, keyed only by the step.
void FillBatch(int64_t step, const ag::TinyGptConfig& cfg, int64_t batch,
               std::vector<int64_t>* ids, std::vector<int64_t>* targets) {
  Rng rng(7700 + static_cast<uint64_t>(step));
  ids->resize(batch * cfg.seq_len);
  targets->resize(batch * cfg.seq_len);
  for (size_t i = 0; i < ids->size(); ++i) {
    (*ids)[i] = static_cast<int64_t>(rng.NextBelow(cfg.vocab_size));
    (*targets)[i] = ((*ids)[i] * 5 + 3) % cfg.vocab_size;
  }
}

TEST(JobDemandTest, PlanJobDemandIsPositiveAndBatchMonotone) {
  const ag::TinyGptConfig cfg = SmallConfig();
  const JobDemand d1 = PlanJobDemand(cfg, 1);
  const JobDemand d4 = PlanJobDemand(cfg, 4);
  EXPECT_GT(d1.ssd_bytes, 0);
  EXPECT_GT(d1.pinned_host_bytes, 0);
  // Activation spill grows with the batch; the marginal pinned-host
  // demand (staging slots) does not.
  EXPECT_GT(d4.ssd_bytes, d1.ssd_bytes);
  EXPECT_EQ(d4.pinned_host_bytes, d1.pinned_host_bytes);
}

TEST(JobDemandTest, EvaluateAdmissionVerdicts) {
  const JobDemand d{1000, 100};
  // Unlimited budgets admit everything.
  EXPECT_EQ(EvaluateAdmission(d, 0, 0, 0, 0), AdmissionVerdict::kAdmitted);
  // Fits remaining -> admitted; fits total but not remaining -> queued;
  // exceeds total -> rejected.
  EXPECT_EQ(EvaluateAdmission(d, 2500, 0, 1000, 0),
            AdmissionVerdict::kAdmitted);
  EXPECT_EQ(EvaluateAdmission(d, 2500, 0, 2000, 0),
            AdmissionVerdict::kQueued);
  EXPECT_EQ(EvaluateAdmission(d, 500, 0, 0, 0), AdmissionVerdict::kRejected);
  // The DRAM axis gates independently.
  EXPECT_EQ(EvaluateAdmission(d, 0, 150, 0, 100), AdmissionVerdict::kQueued);
  EXPECT_EQ(EvaluateAdmission(d, 0, 50, 0, 0), AdmissionVerdict::kRejected);
}

TEST(JobDemandTest, PlanAdmissionsChargesAdmittedAndQueued) {
  const JobDemand d{1000, 0};
  const std::vector<AdmissionVerdict> verdicts =
      PlanAdmissions({d, d, d, {4000, 0}}, 2500, 0);
  ASSERT_EQ(verdicts.size(), 4u);
  EXPECT_EQ(verdicts[0], AdmissionVerdict::kAdmitted);
  EXPECT_EQ(verdicts[1], AdmissionVerdict::kAdmitted);
  EXPECT_EQ(verdicts[2], AdmissionVerdict::kQueued);
  EXPECT_EQ(verdicts[3], AdmissionVerdict::kRejected);
}

TEST(JobDemandTest, NamesAreStable) {
  EXPECT_STREQ(AdmissionVerdictName(AdmissionVerdict::kAdmitted), "admitted");
  EXPECT_STREQ(AdmissionVerdictName(AdmissionVerdict::kQueued), "queued");
  EXPECT_STREQ(AdmissionVerdictName(AdmissionVerdict::kRejected), "rejected");
  EXPECT_STREQ(JobStateName(JobState::kQueued), "queued");
  EXPECT_STREQ(JobStateName(JobState::kRunning), "running");
  EXPECT_STREQ(JobStateName(JobState::kPreempted), "preempted");
  EXPECT_STREQ(JobStateName(JobState::kFinished), "finished");
  EXPECT_STREQ(JobStateName(JobState::kRejected), "rejected");
}

TEST(JobManagerTest, RejectsMalformedSpecs) {
  auto manager_or = JobManager::Create(ManagerOptions("malformed"));
  ASSERT_TRUE(manager_or.ok());
  JobManager& manager = **manager_or;
  JobSpec spec;
  spec.model = SmallConfig();
  EXPECT_FALSE(manager.Submit(spec).ok());  // empty name
  spec.name = "job";
  spec.batch = 0;
  EXPECT_FALSE(manager.Submit(spec).ok());
  spec.batch = 1;
  spec.steps = 1;
  ASSERT_TRUE(manager.Submit(spec).ok());
  // Duplicate names collide in the key namespace.
  EXPECT_EQ(manager.Submit(spec).status().code(), StatusCode::kAlreadyExists);
  EXPECT_TRUE(manager.WaitAll().ok());
}

TEST(JobManagerTest, SingleJobMatchesBareTrainer) {
  // The acceptance criterion of the tenancy layer: one job through the
  // JobManager (tenant lane, key namespace, shared engine) follows the
  // exact loss trajectory of a bare RatelTrainer on its own engine.
  const ag::TinyGptConfig cfg = SmallConfig();
  const int64_t kBatch = 2;
  const int64_t kSteps = 4;

  std::vector<float> bare_losses;
  {
    ag::TinyGpt model(cfg, /*seed=*/21);
    TrainerOptions opts;
    opts.store_dir = TempDir("bare");
    auto trainer_or = RatelTrainer::Create(&model, opts);
    ASSERT_TRUE(trainer_or.ok());
    std::vector<int64_t> ids;
    std::vector<int64_t> targets;
    for (int64_t step = 0; step < kSteps; ++step) {
      FillBatch(step, cfg, kBatch, &ids, &targets);
      auto loss = (*trainer_or)->TrainStep(ids, targets, kBatch);
      ASSERT_TRUE(loss.ok());
      bare_losses.push_back(*loss);
    }
  }

  auto manager_or = JobManager::Create(ManagerOptions("single"));
  ASSERT_TRUE(manager_or.ok());
  JobManager& manager = **manager_or;
  JobSpec spec;
  spec.name = "solo";
  spec.model = cfg;
  spec.seed = 21;
  spec.batch = kBatch;
  spec.steps = kSteps;
  spec.batch_fn = [cfg, kBatch](int64_t step, std::vector<int64_t>* ids,
                                std::vector<int64_t>* targets) {
    FillBatch(step, cfg, kBatch, ids, targets);
  };
  auto verdict = manager.Submit(spec);
  ASSERT_TRUE(verdict.ok());
  EXPECT_EQ(*verdict, AdmissionVerdict::kAdmitted);
  ASSERT_TRUE(manager.WaitAll().ok());

  const JobManagerStats stats = manager.Stats();
  ASSERT_EQ(stats.jobs.size(), 1u);
  const JobStats& job = stats.jobs[0];
  EXPECT_EQ(job.state, JobState::kFinished);
  EXPECT_EQ(job.steps_done, kSteps);
  EXPECT_EQ(job.last_loss, bare_losses.back());  // bitwise
  EXPECT_GT(job.tokens_per_s, 0.0);
  EXPECT_GE(job.p99_step_seconds, 0.0);
  EXPECT_GT(job.xfer.Flow(FlowClass::kParamFetch).bytes_read, 0);
}

TEST(JobManagerTest, AdmitsQueuesAndRunsInCapacityOrder) {
  const ag::TinyGptConfig cfg = SmallConfig();
  const JobDemand demand = PlanJobDemand(cfg, 2);

  JobManager::Options options = ManagerOptions("queue");
  options.ssd_budget_bytes = 2 * demand.ssd_bytes + demand.ssd_bytes / 2;
  auto manager_or = JobManager::Create(options);
  ASSERT_TRUE(manager_or.ok());
  JobManager& manager = **manager_or;

  // Jobs A and B hold their capacity while parked inside batch_fn so
  // the third submit deterministically sees a full house.
  std::mutex mu;
  std::condition_variable cv;
  int parked = 0;
  bool release = false;
  auto gate = [&](int64_t step, std::vector<int64_t>* ids,
                  std::vector<int64_t>* targets) {
    if (step == 0) {
      std::unique_lock<std::mutex> lock(mu);
      ++parked;
      cv.notify_all();
      cv.wait(lock, [&] { return release; });
    }
    FillBatch(step, cfg, 2, ids, targets);
  };

  JobSpec spec;
  spec.model = cfg;
  spec.batch = 2;
  spec.steps = 2;
  spec.batch_fn = gate;
  spec.name = "jobA";
  ASSERT_TRUE(manager.Submit(spec).ok());
  spec.name = "jobB";
  ASSERT_TRUE(manager.Submit(spec).ok());
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return parked == 2; });
  }

  spec.name = "jobC";
  spec.batch_fn = [cfg](int64_t step, std::vector<int64_t>* ids,
                        std::vector<int64_t>* targets) {
    FillBatch(step, cfg, 2, ids, targets);
  };
  auto verdict = manager.Submit(spec);
  ASSERT_TRUE(verdict.ok());
  EXPECT_EQ(*verdict, AdmissionVerdict::kQueued);
  EXPECT_EQ(manager.Evaluate(demand), AdmissionVerdict::kQueued);

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  ASSERT_TRUE(manager.WaitAll().ok());

  const JobManagerStats stats = manager.Stats();
  EXPECT_EQ(stats.admitted, 2);
  EXPECT_EQ(stats.rejected, 0);
  for (const JobStats& job : stats.jobs) {
    EXPECT_EQ(job.state, JobState::kFinished) << job.name;
    EXPECT_EQ(job.steps_done, 2) << job.name;
  }
}

TEST(JobManagerTest, OverTotalBudgetJobIsRejectedNeverRun) {
  const ag::TinyGptConfig cfg = SmallConfig();
  const JobDemand demand = PlanJobDemand(cfg, 2);
  JobManager::Options options = ManagerOptions("reject");
  options.ssd_budget_bytes = demand.ssd_bytes / 2;
  auto manager_or = JobManager::Create(options);
  ASSERT_TRUE(manager_or.ok());
  JobManager& manager = **manager_or;

  JobSpec spec;
  spec.name = "toolarge";
  spec.model = cfg;
  spec.batch = 2;
  spec.steps = 2;
  auto verdict = manager.Submit(spec);
  ASSERT_TRUE(verdict.ok());
  EXPECT_EQ(*verdict, AdmissionVerdict::kRejected);
  EXPECT_TRUE(manager.WaitAll().ok());  // rejection is not a job error

  const JobManagerStats stats = manager.Stats();
  ASSERT_EQ(stats.jobs.size(), 1u);
  EXPECT_EQ(stats.jobs[0].state, JobState::kRejected);
  EXPECT_EQ(stats.jobs[0].steps_done, 0);
  EXPECT_EQ(stats.jobs[0].status.code(), StatusCode::kOutOfRange);
  EXPECT_EQ(stats.rejected, 1);
}

TEST(JobManagerTest, PreemptAndResumeContinueTheTrajectory) {
  const ag::TinyGptConfig cfg = SmallConfig();
  const int64_t kSteps = 5;

  auto plain_batches = [cfg](int64_t step, std::vector<int64_t>* ids,
                             std::vector<int64_t>* targets) {
    FillBatch(step, cfg, 2, ids, targets);
  };

  // Reference: the same job, never preempted.
  float uninterrupted_loss = 0.0f;
  {
    auto manager_or = JobManager::Create(ManagerOptions("noresume"));
    ASSERT_TRUE(manager_or.ok());
    JobSpec spec;
    spec.name = "ref";
    spec.model = cfg;
    spec.seed = 5;
    spec.batch = 2;
    spec.steps = kSteps;
    spec.batch_fn = plain_batches;
    ASSERT_TRUE((*manager_or)->Submit(spec).ok());
    ASSERT_TRUE((*manager_or)->WaitAll().ok());
    const JobManagerStats stats = (*manager_or)->Stats();
    uninterrupted_loss = stats.jobs[0].last_loss;
  }

  auto manager_or = JobManager::Create(ManagerOptions("resume"));
  ASSERT_TRUE(manager_or.ok());
  JobManager& manager = **manager_or;

  // The job parks inside batch_fn(0) until Preempt() has been issued,
  // so the preemption deterministically lands after step 0.
  std::mutex mu;
  std::condition_variable cv;
  bool step0_reached = false;
  bool preempt_issued = false;
  JobSpec spec;
  spec.name = "job";
  spec.model = cfg;
  spec.seed = 5;
  spec.batch = 2;
  spec.steps = kSteps;
  spec.checkpoint_dir = TempDir("resume_ckpt");
  spec.batch_fn = [&](int64_t step, std::vector<int64_t>* ids,
                      std::vector<int64_t>* targets) {
    if (step == 0) {
      std::unique_lock<std::mutex> lock(mu);
      step0_reached = true;
      cv.notify_all();
      cv.wait(lock, [&] { return preempt_issued; });
    }
    FillBatch(step, cfg, 2, ids, targets);
  };
  ASSERT_TRUE(manager.Submit(spec).ok());
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return step0_reached; });
  }
  ASSERT_TRUE(manager.Preempt("job").ok());
  {
    std::lock_guard<std::mutex> lock(mu);
    preempt_issued = true;
  }
  cv.notify_all();
  ASSERT_TRUE(manager.WaitAll().ok());
  {
    const JobManagerStats stats = manager.Stats();
    ASSERT_EQ(stats.jobs.size(), 1u);
    EXPECT_EQ(stats.jobs[0].state, JobState::kPreempted);
    EXPECT_EQ(stats.jobs[0].steps_done, 1);
  }

  // Preempting a parked job is a precondition error.
  EXPECT_EQ(manager.Preempt("job").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(manager.Resume("missing").code(), StatusCode::kNotFound);

  ASSERT_TRUE(manager.Resume("job").ok());
  ASSERT_TRUE(manager.WaitAll().ok());
  const JobManagerStats stats = manager.Stats();
  ASSERT_EQ(stats.jobs.size(), 1u);
  EXPECT_EQ(stats.jobs[0].state, JobState::kFinished);
  EXPECT_EQ(stats.jobs[0].steps_done, kSteps);
  // The resumed run ends on the exact loss of the uninterrupted one.
  EXPECT_EQ(stats.jobs[0].last_loss, uninterrupted_loss);
}

TEST(JobManagerTest, EnvOverlaysApplyByJobName) {
  // A tight in-flight quota overlay exercises the backpressure path
  // end to end; training must still complete correctly under it.
  ASSERT_EQ(setenv("RATEL_TENANT_WEIGHT", "quotajob=5,other=2", 1), 0);
  ASSERT_EQ(setenv("RATEL_TENANT_INFLIGHT_QUOTA", "quotajob=65536", 1), 0);
  auto manager_or = JobManager::Create(ManagerOptions("envoverlay"));
  ASSERT_TRUE(manager_or.ok());
  JobManager& manager = **manager_or;
  JobSpec spec;
  spec.name = "quotajob";
  spec.model = SmallConfig();
  spec.batch = 2;
  spec.steps = 2;
  ASSERT_TRUE(manager.Submit(spec).ok());
  ASSERT_TRUE(manager.WaitAll().ok());
  unsetenv("RATEL_TENANT_WEIGHT");
  unsetenv("RATEL_TENANT_INFLIGHT_QUOTA");
  const JobManagerStats stats = manager.Stats();
  EXPECT_EQ(stats.jobs[0].state, JobState::kFinished);
  EXPECT_EQ(stats.jobs[0].steps_done, 2);
  EXPECT_EQ(manager.engine().tenant_inflight_bytes(stats.jobs[0].tenant), 0);
}

TEST(JobManagerTest, ConcurrentJobsReconcileAgainstEngineTotals) {
  const ag::TinyGptConfig cfg = SmallConfig();
  JobManager::Options options = ManagerOptions("recon");
  options.engine.host_cache_bytes = 1 << 20;
  options.dram_budget_bytes = 0;  // unlimited; the small cache is not a gate
  auto manager_or = JobManager::Create(options);
  ASSERT_TRUE(manager_or.ok());
  JobManager& manager = **manager_or;

  for (int j = 0; j < 3; ++j) {
    JobSpec spec;
    spec.name = "job" + std::to_string(j);
    spec.model = cfg;
    spec.seed = 100 + j;
    spec.batch = 2;
    spec.steps = 3;
    auto verdict = manager.Submit(spec);
    ASSERT_TRUE(verdict.ok());
    EXPECT_EQ(*verdict, AdmissionVerdict::kAdmitted);
  }
  ASSERT_TRUE(manager.WaitAll().ok());

  const JobManagerStats stats = manager.Stats();
  ASSERT_EQ(stats.jobs.size(), 3u);
  for (const JobStats& job : stats.jobs) {
    EXPECT_EQ(job.state, JobState::kFinished) << job.name;
    EXPECT_EQ(job.steps_done, 3) << job.name;
    EXPECT_GT(job.xfer.Flow(FlowClass::kParamFetch).bytes_read, 0)
        << job.name;
    EXPECT_GT(job.tokens_per_s, 0.0) << job.name;
  }
  EXPECT_GT(stats.aggregate_tokens_per_s, 0.0);

  // Summing every tenant's per-flow counters reproduces the engine
  // totals exactly — no byte is unattributed or double counted.
  TransferEngine& engine = manager.engine();
  const TransferStats total = engine.stats();
  for (int f = 0; f < kNumFlowClasses; ++f) {
    int64_t reads = 0, writes = 0, bytes_read = 0, bytes_written = 0;
    int64_t hits = 0, misses = 0, errors = 0;
    for (TenantId t : engine.tenants()) {
      const TransferStats part = engine.tenant_stats(t);
      const FlowCounters& c = part.flow[f];
      reads += c.reads;
      writes += c.writes;
      bytes_read += c.bytes_read;
      bytes_written += c.bytes_written;
      hits += c.cache_hits;
      misses += c.cache_misses;
      errors += c.errors;
    }
    EXPECT_EQ(reads, total.flow[f].reads) << "flow " << f;
    EXPECT_EQ(writes, total.flow[f].writes) << "flow " << f;
    EXPECT_EQ(bytes_read, total.flow[f].bytes_read) << "flow " << f;
    EXPECT_EQ(bytes_written, total.flow[f].bytes_written) << "flow " << f;
    EXPECT_EQ(hits, total.flow[f].cache_hits) << "flow " << f;
    EXPECT_EQ(misses, total.flow[f].cache_misses) << "flow " << f;
    EXPECT_EQ(errors, total.flow[f].errors) << "flow " << f;
  }
}

}  // namespace
}  // namespace ratel
