// SIMD compute-layer suite (ctest labels: determinism simd).
//
// Pins the src/simd contract from both sides:
//  - the AVX2 backend matches the scalar reference bitwise for every
//    kernel documented as bitwise (elementwise, fp16 conversion,
//    softmax/ce rows, the fused Adam steps), and within tight tolerance
//    for the reduction kernels that legitimately re-associate (GEMM,
//    layernorm, GeLU's polynomial tanh);
//  - for a fixed RATEL_SIMD mode, whole-model training stays bitwise
//    identical across 1/2/4 compute threads (run oversubscribed so the
//    sweep exercises genuine interleaving even on a 1-core host);
//  - the adaptive dispatch cutoffs flip between inline and pooled
//    execution exactly at the documented boundary, without affecting
//    results.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "autograd/transformer.h"
#include "common/fp16.h"
#include "common/rng.h"
#include "optim/cpu_adam.h"
#include "runtime/compute_pool.h"
#include "runtime/dataset.h"
#include "simd/simd.h"

namespace ratel {
namespace {

std::vector<float> RandomVec(int64_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (int64_t i = 0; i < n; ++i) {
    v[i] = static_cast<float>(rng.NextGaussian()) * 0.5f;
  }
  return v;
}

std::vector<Fp16> RandomHalves(int64_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Fp16> v(n);
  for (int64_t i = 0; i < n; ++i) {
    v[i] = FloatToHalf(static_cast<float>(rng.NextGaussian()));
  }
  return v;
}

bool BitwiseEqual(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

void ExpectClose(const std::vector<float>& ref, const std::vector<float>& got,
                 float rtol, float atol, const char* what) {
  ASSERT_EQ(ref.size(), got.size()) << what;
  for (size_t i = 0; i < ref.size(); ++i) {
    const float tol = atol + rtol * std::abs(ref[i]);
    EXPECT_NEAR(ref[i], got[i], tol) << what << " element " << i;
  }
}

// Saves and restores every piece of process-global kernel state the
// tests poke, so one test cannot leak its configuration into the next.
class SimdTest : public ::testing::Test {
 protected:
  void SetUp() override {
    mode_ = simd::ActiveMode();
    threads_ = ComputeThreads();
    oversubscribe_ = ParallelOversubscribe();
    for (int c = 0; c < kNumKernelCosts; ++c) {
      cutoffs_[c] = SerialCutoff(static_cast<KernelCost>(c));
    }
  }
  void TearDown() override {
    ASSERT_TRUE(simd::SetMode(mode_));
    SetComputeThreads(threads_);
    SetParallelOversubscribe(oversubscribe_);
    for (int c = 0; c < kNumKernelCosts; ++c) {
      SetSerialCutoff(static_cast<KernelCost>(c), cutoffs_[c]);
    }
    ResetDispatchStats();
  }

  simd::Mode mode_ = simd::Mode::kScalar;
  int threads_ = 1;
  bool oversubscribe_ = false;
  int64_t cutoffs_[kNumKernelCosts] = {};
};

// ---------------------------------------------------------------------
// Backend selection.

TEST_F(SimdTest, ScalarModeAlwaysSelectable) {
  EXPECT_TRUE(simd::SetMode(simd::Mode::kScalar));
  EXPECT_EQ(simd::ActiveMode(), simd::Mode::kScalar);
  EXPECT_STREQ(simd::Kernels().name, "scalar");
}

TEST_F(SimdTest, Avx2ModeSelectableIffHostSupportsIt) {
  EXPECT_EQ(simd::SetMode(simd::Mode::kAvx2), simd::HostHasAvx2());
  if (simd::HostHasAvx2()) {
    EXPECT_EQ(simd::ActiveMode(), simd::Mode::kAvx2);
    EXPECT_STREQ(simd::Kernels().name, "avx2");
  }
}

// ---------------------------------------------------------------------
// AVX2 vs scalar, kernel by kernel. Shapes are deliberately awkward
// (odd rows/cols) so the 6/4/1-row GEMM blocks and the 16/8/partial
// column tails all execute.

TEST_F(SimdTest, GemmNnMatchesScalarWithinTolerance) {
  if (!simd::HostHasAvx2()) GTEST_SKIP() << "host lacks AVX2";
  const int64_t m = 37, k = 53, n = 41;
  const std::vector<float> a = RandomVec(m * k, 1);
  const std::vector<float> b = RandomVec(k * n, 2);
  std::vector<float> ref = RandomVec(m * n, 3);  // accumulate semantics
  std::vector<float> got = ref;
  simd::KernelsFor(simd::Mode::kScalar)
      .gemm_nn_rows(a.data(), b.data(), ref.data(), 0, m, k, n);
  simd::KernelsFor(simd::Mode::kAvx2)
      .gemm_nn_rows(a.data(), b.data(), got.data(), 0, m, k, n);
  ExpectClose(ref, got, 1e-4f, 1e-4f, "gemm_nn");
}

TEST_F(SimdTest, GemmTnMatchesScalarWithinTolerance) {
  if (!simd::HostHasAvx2()) GTEST_SKIP() << "host lacks AVX2";
  const int64_t m = 29, k = 37, n = 43;
  const std::vector<float> a = RandomVec(m * k, 4);
  const std::vector<float> b = RandomVec(m * n, 5);
  std::vector<float> ref = RandomVec(k * n, 6);
  std::vector<float> got = ref;
  simd::KernelsFor(simd::Mode::kScalar)
      .gemm_tn_rows(a.data(), b.data(), ref.data(), 0, k, m, k, n);
  simd::KernelsFor(simd::Mode::kAvx2)
      .gemm_tn_rows(a.data(), b.data(), got.data(), 0, k, m, k, n);
  ExpectClose(ref, got, 1e-4f, 1e-4f, "gemm_tn");
}

TEST_F(SimdTest, ElementwiseKernelsAreBitwiseAcrossBackends) {
  if (!simd::HostHasAvx2()) GTEST_SKIP() << "host lacks AVX2";
  const int64_t n = 1003;  // odd: exercises the partial-vector tail
  const std::vector<float> a = RandomVec(n, 7);
  const std::vector<float> b = RandomVec(n, 8);
  const auto& sc = simd::KernelsFor(simd::Mode::kScalar);
  const auto& av = simd::KernelsFor(simd::Mode::kAvx2);
  std::vector<float> r(n), g(n);

  sc.add(a.data(), b.data(), r.data(), n);
  av.add(a.data(), b.data(), g.data(), n);
  EXPECT_TRUE(BitwiseEqual(r, g)) << "add";

  r = a;
  g = a;
  sc.accumulate(r.data(), b.data(), n);
  av.accumulate(g.data(), b.data(), n);
  EXPECT_TRUE(BitwiseEqual(r, g)) << "accumulate";

  sc.scale(a.data(), 1.37f, r.data(), n);
  av.scale(a.data(), 1.37f, g.data(), n);
  EXPECT_TRUE(BitwiseEqual(r, g)) << "scale";

  sc.mul(a.data(), b.data(), r.data(), n);
  av.mul(a.data(), b.data(), g.data(), n);
  EXPECT_TRUE(BitwiseEqual(r, g)) << "mul";

  sc.diff_scale(a.data(), b.data(), 0.753f, r.data(), n);
  av.diff_scale(a.data(), b.data(), 0.753f, g.data(), n);
  EXPECT_TRUE(BitwiseEqual(r, g)) << "diff_scale";
}

TEST_F(SimdTest, GeluMatchesScalarWithinTolerance) {
  if (!simd::HostHasAvx2()) GTEST_SKIP() << "host lacks AVX2";
  const int64_t n = 517;
  std::vector<float> x = RandomVec(n, 9);
  for (int64_t i = 0; i < n; ++i) x[i] *= 6.0f;  // cover the saturated tails
  const std::vector<float> g = RandomVec(n, 10);
  const auto& sc = simd::KernelsFor(simd::Mode::kScalar);
  const auto& av = simd::KernelsFor(simd::Mode::kAvx2);
  std::vector<float> r(n), o(n);
  sc.gelu_fwd(x.data(), r.data(), n);
  av.gelu_fwd(x.data(), o.data(), n);
  ExpectClose(r, o, 1e-4f, 1e-5f, "gelu_fwd");
  sc.gelu_bwd(x.data(), g.data(), r.data(), n);
  av.gelu_bwd(x.data(), g.data(), o.data(), n);
  ExpectClose(r, o, 1e-4f, 1e-5f, "gelu_bwd");
}

TEST_F(SimdTest, LayerNormRowMatchesScalarWithinTolerance) {
  if (!simd::HostHasAvx2()) GTEST_SKIP() << "host lacks AVX2";
  const int64_t n = 67;
  const std::vector<float> x = RandomVec(n, 11);
  const std::vector<float> gamma = RandomVec(n, 12);
  const std::vector<float> beta = RandomVec(n, 13);
  const std::vector<float> g = RandomVec(n, 14);
  const auto& sc = simd::KernelsFor(simd::Mode::kScalar);
  const auto& av = simd::KernelsFor(simd::Mode::kAvx2);

  std::vector<float> out_r(n), out_a(n);
  float mean_r = 0, inv_r = 0, mean_a = 0, inv_a = 0;
  sc.layernorm_row_fwd(x.data(), gamma.data(), beta.data(), n, 1e-5f,
                       out_r.data(), &mean_r, &inv_r);
  av.layernorm_row_fwd(x.data(), gamma.data(), beta.data(), n, 1e-5f,
                       out_a.data(), &mean_a, &inv_a);
  EXPECT_NEAR(mean_r, mean_a, 1e-6f + 1e-5f * std::abs(mean_r));
  EXPECT_NEAR(inv_r, inv_a, 1e-6f + 1e-5f * std::abs(inv_r));
  ExpectClose(out_r, out_a, 1e-4f, 1e-5f, "layernorm_fwd");

  std::vector<float> dg_r(n, 0.1f), db_r(n, 0.2f), dx_r(n);
  std::vector<float> dg_a(n, 0.1f), db_a(n, 0.2f), dx_a(n);
  sc.layernorm_row_bwd(x.data(), g.data(), gamma.data(), mean_r, inv_r, n,
                       dg_r.data(), db_r.data(), dx_r.data());
  av.layernorm_row_bwd(x.data(), g.data(), gamma.data(), mean_r, inv_r, n,
                       dg_a.data(), db_a.data(), dx_a.data());
  ExpectClose(dg_r, dg_a, 1e-4f, 1e-5f, "layernorm_bwd dgamma");
  ExpectClose(db_r, db_a, 1e-4f, 1e-5f, "layernorm_bwd dbeta");
  ExpectClose(dx_r, dx_a, 1e-4f, 1e-5f, "layernorm_bwd dx");
}

TEST_F(SimdTest, SoftmaxAndCeGradRowsAreBitwiseAcrossBackends) {
  if (!simd::HostHasAvx2()) GTEST_SKIP() << "host lacks AVX2";
  const int64_t n = 133;
  std::vector<float> x = RandomVec(n, 15);
  for (int64_t i = 0; i < n; ++i) x[i] *= 4.0f;
  const auto& sc = simd::KernelsFor(simd::Mode::kScalar);
  const auto& av = simd::KernelsFor(simd::Mode::kAvx2);
  std::vector<float> p_r(n), p_a(n);
  sc.softmax_row(x.data(), p_r.data(), n);
  av.softmax_row(x.data(), p_a.data(), n);
  EXPECT_TRUE(BitwiseEqual(p_r, p_a)) << "softmax_row";

  std::vector<float> g_r(n), g_a(n);
  sc.ce_grad_row(p_r.data(), /*target=*/17, 0.25f, g_r.data(), n);
  av.ce_grad_row(p_r.data(), /*target=*/17, 0.25f, g_a.data(), n);
  EXPECT_TRUE(BitwiseEqual(g_r, g_a)) << "ce_grad_row";
}

TEST_F(SimdTest, Fp16ConversionsAreBitwiseAcrossBackends) {
  if (!simd::HostHasAvx2()) GTEST_SKIP() << "host lacks AVX2";
  const int64_t n = 2051;
  const std::vector<Fp16> h = RandomHalves(n, 16);
  const std::vector<float> f = RandomVec(n, 17);
  const auto& sc = simd::KernelsFor(simd::Mode::kScalar);
  const auto& av = simd::KernelsFor(simd::Mode::kAvx2);

  std::vector<float> wr(n), wa(n);
  sc.halves_to_floats(h.data(), wr.data(), n, 2.5f);
  av.halves_to_floats(h.data(), wa.data(), n, 2.5f);
  EXPECT_TRUE(BitwiseEqual(wr, wa)) << "halves_to_floats";

  std::vector<Fp16> nr(n), na(n);
  sc.floats_to_halves(f.data(), nr.data(), n);
  av.floats_to_halves(f.data(), na.data(), n);
  EXPECT_EQ(0, std::memcmp(nr.data(), na.data(), n * sizeof(Fp16)))
      << "floats_to_halves";
}

TEST_F(SimdTest, AdamStepsAreBitwiseAcrossBackendsAndVsSerialReference) {
  if (!simd::HostHasAvx2()) GTEST_SKIP() << "host lacks AVX2";
  const int64_t n = 1234;
  AdamConfig cfg;
  cfg.lr = 1e-3;
  cfg.weight_decay = 0.01;
  CpuAdamKernel kernel(cfg);
  const std::vector<float> p0 = RandomVec(n, 18);
  const std::vector<float> g = RandomVec(n, 19);
  const std::vector<Fp16> g16 = RandomHalves(n, 20);

  // Serial plain-loop reference (fp32 grads).
  std::vector<float> p_ref = p0, m_ref(n, 0.0f), v_ref(n, 0.0f);
  std::vector<Fp16> h_ref(n);
  for (int step = 1; step <= 3; ++step) {
    kernel.StepSerialOut(step, n, g.data(), p_ref.data(), m_ref.data(),
                         v_ref.data(), p_ref.data(), m_ref.data(),
                         v_ref.data(), h_ref.data());
  }

  for (simd::Mode mode : {simd::Mode::kScalar, simd::Mode::kAvx2}) {
    ASSERT_TRUE(simd::SetMode(mode));
    std::vector<float> p = p0, m(n, 0.0f), v(n, 0.0f);
    std::vector<Fp16> h(n);
    for (int step = 1; step <= 3; ++step) {
      kernel.Step(step, n, g.data(), p.data(), m.data(), v.data(), h.data());
    }
    EXPECT_TRUE(BitwiseEqual(p_ref, p)) << simd::ModeName(mode);
    EXPECT_TRUE(BitwiseEqual(m_ref, m)) << simd::ModeName(mode);
    EXPECT_TRUE(BitwiseEqual(v_ref, v)) << simd::ModeName(mode);
    EXPECT_EQ(0, std::memcmp(h_ref.data(), h.data(), n * sizeof(Fp16)))
        << simd::ModeName(mode);
  }

  // fp16-grad path: both backends must agree bitwise with the scalar
  // widen-then-StepSerialOut composition.
  const float unscale = 0.5f;
  std::vector<float> gw(n);
  for (int64_t i = 0; i < n; ++i) gw[i] = HalfToFloat(g16[i]) * unscale;
  std::vector<float> p16ref = p0, m16ref(n, 0.0f), v16ref(n, 0.0f);
  std::vector<Fp16> h16ref(n);
  kernel.StepSerialOut(1, n, gw.data(), p16ref.data(), m16ref.data(),
                       v16ref.data(), p16ref.data(), m16ref.data(),
                       v16ref.data(), h16ref.data());
  for (simd::Mode mode : {simd::Mode::kScalar, simd::Mode::kAvx2}) {
    ASSERT_TRUE(simd::SetMode(mode));
    std::vector<float> p = p0, m(n, 0.0f), v(n, 0.0f);
    std::vector<Fp16> h(n);
    kernel.StepFp16Grads(1, n, g16.data(), p.data(), m.data(), v.data(),
                         h.data(), unscale);
    EXPECT_TRUE(BitwiseEqual(p16ref, p)) << simd::ModeName(mode);
    EXPECT_TRUE(BitwiseEqual(m16ref, m)) << simd::ModeName(mode);
    EXPECT_TRUE(BitwiseEqual(v16ref, v)) << simd::ModeName(mode);
    EXPECT_EQ(0, std::memcmp(h16ref.data(), h.data(), n * sizeof(Fp16)))
        << simd::ModeName(mode);
  }
}

// Satellite regression: StepFp16GradsChunksOut's fused (vectorized)
// half->float conversion must reproduce the widen-then-serial reference
// bitwise, for any split of the chunk grid across calls.
TEST_F(SimdTest, Fp16ChunkStepsMatchSerialReferenceBitwise) {
  const int64_t n = 3 * CpuAdamKernel::kChunk + 123;
  AdamConfig cfg;
  cfg.lr = 2e-3;
  cfg.weight_decay = 0.02;
  CpuAdamKernel kernel(cfg);
  const std::vector<float> p0 = RandomVec(n, 21);
  const std::vector<Fp16> g16 = RandomHalves(n, 22);
  const float unscale = 1.75f;

  std::vector<float> gw(n);
  for (int64_t i = 0; i < n; ++i) gw[i] = HalfToFloat(g16[i]) * unscale;
  std::vector<float> p_ref = p0, m_ref(n, 0.0f), v_ref(n, 0.0f);
  std::vector<Fp16> h_ref(n);
  kernel.StepSerialOut(1, n, gw.data(), p_ref.data(), m_ref.data(),
                       v_ref.data(), p_ref.data(), m_ref.data(), v_ref.data(),
                       h_ref.data());

  std::vector<simd::Mode> modes = {simd::Mode::kScalar};
  if (simd::HostHasAvx2()) modes.push_back(simd::Mode::kAvx2);
  for (simd::Mode mode : modes) {
    ASSERT_TRUE(simd::SetMode(mode));
    std::vector<float> p = p0, m(n, 0.0f), v(n, 0.0f);
    std::vector<Fp16> h(n);
    // Apply the grid as two disjoint calls (evens, then odds).
    std::vector<int64_t> evens, odds;
    const int64_t num_chunks =
        (n + CpuAdamKernel::kChunk - 1) / CpuAdamKernel::kChunk;
    for (int64_t c = 0; c < num_chunks; ++c) {
      (c % 2 == 0 ? evens : odds).push_back(c);
    }
    for (const auto& chunks : {evens, odds}) {
      kernel.StepFp16GradsChunksOut(1, n, g16.data(), chunks,
                                    CpuAdamKernel::kChunk, p.data(), m.data(),
                                    v.data(), p.data(), m.data(), v.data(),
                                    h.data(), unscale);
    }
    EXPECT_TRUE(BitwiseEqual(p_ref, p)) << simd::ModeName(mode);
    EXPECT_TRUE(BitwiseEqual(m_ref, m)) << simd::ModeName(mode);
    EXPECT_TRUE(BitwiseEqual(v_ref, v)) << simd::ModeName(mode);
    EXPECT_EQ(0, std::memcmp(h_ref.data(), h.data(), n * sizeof(Fp16)))
        << simd::ModeName(mode);
  }
}

// ---------------------------------------------------------------------
// Thread-count determinism per mode: whole TinyGpt training steps, run
// oversubscribed so 2/4 threads genuinely interleave on any host.

struct TrainRun {
  std::vector<float> losses;
  std::vector<std::vector<float>> params;
};

TrainRun TrainTinyGpt(int threads, int steps) {
  SetComputeThreads(threads);
  ag::TinyGptConfig cfg;
  cfg.vocab_size = 48;
  cfg.seq_len = 12;
  cfg.hidden_dim = 32;
  cfg.num_heads = 4;
  cfg.num_layers = 2;
  ag::TinyGpt model(cfg, /*seed=*/99);

  AdamConfig acfg;
  acfg.lr = 1e-3;
  acfg.weight_decay = 0.01;
  CpuAdamKernel kernel(acfg);
  std::vector<std::vector<float>> exp_avg, exp_avg_sq;
  for (auto& [name, var] : model.parameters()) {
    exp_avg.emplace_back(var.value().size(), 0.0f);
    exp_avg_sq.emplace_back(var.value().size(), 0.0f);
  }
  SyntheticDataset dataset(SyntheticTask::kAffineMap, cfg.vocab_size,
                           cfg.seq_len, /*seed=*/7);
  TrainRun run;
  for (int step = 1; step <= steps; ++step) {
    const TokenBatch b = dataset.NextBatch(2);
    model.ZeroGrads();
    ag::Variable loss = model.Loss(b.ids, b.targets, 2);
    loss.Backward();
    run.losses.push_back(loss.value()[0]);
    size_t p = 0;
    for (auto& [name, var] : model.parameters()) {
      const std::vector<float>& grad = var.grad();
      kernel.Step(step, static_cast<int64_t>(grad.size()), grad.data(),
                  var.mutable_value().data(), exp_avg[p].data(),
                  exp_avg_sq[p].data(), /*params16_out=*/nullptr);
      ++p;
    }
  }
  for (auto& [name, var] : model.parameters()) {
    run.params.push_back(var.value());
  }
  return run;
}

TEST_F(SimdTest, TinyGptTrajectoryIsBitwiseAcrossThreadCountsPerMode) {
  SetParallelOversubscribe(true);
  std::vector<simd::Mode> modes = {simd::Mode::kScalar};
  if (simd::HostHasAvx2()) modes.push_back(simd::Mode::kAvx2);
  for (simd::Mode mode : modes) {
    ASSERT_TRUE(simd::SetMode(mode));
    const TrainRun t1 = TrainTinyGpt(/*threads=*/1, /*steps=*/3);
    const TrainRun t2 = TrainTinyGpt(/*threads=*/2, /*steps=*/3);
    const TrainRun t4 = TrainTinyGpt(/*threads=*/4, /*steps=*/3);
    for (const TrainRun* other : {&t2, &t4}) {
      ASSERT_EQ(t1.losses.size(), other->losses.size());
      for (size_t i = 0; i < t1.losses.size(); ++i) {
        EXPECT_EQ(t1.losses[i], other->losses[i])
            << simd::ModeName(mode) << " step " << i + 1;
      }
      ASSERT_EQ(t1.params.size(), other->params.size());
      for (size_t p = 0; p < t1.params.size(); ++p) {
        EXPECT_TRUE(BitwiseEqual(t1.params[p], other->params[p]))
            << simd::ModeName(mode) << " parameter tensor " << p;
      }
    }
  }
}

// ---------------------------------------------------------------------
// Adaptive dispatch cutoffs.

TEST_F(SimdTest, ParallelWidthClampsToCoresUnlessOversubscribed) {
  SetComputeThreads(4);
  SetParallelOversubscribe(false);
  EXPECT_LE(ParallelWidth(), ComputeThreads());
  SetParallelOversubscribe(true);
  EXPECT_EQ(ParallelWidth(), ComputeThreads());
}

TEST_F(SimdTest, DispatchFlipsAtTheCutoffBoundary) {
  SetComputeThreads(2);
  SetParallelOversubscribe(true);  // width 2 even on a 1-core host
  SetSerialCutoff(KernelCost::kElementwise, 1000);
  auto run = [](int64_t est_ops) {
    std::vector<float> out(64, 0.0f);
    ComputeParallelFor(KernelCost::kElementwise, est_ops, 0, 64, 8,
                       [&](int64_t b, int64_t e) {
                         for (int64_t i = b; i < e; ++i) out[i] = float(i);
                       });
    for (int64_t i = 0; i < 64; ++i) ASSERT_EQ(out[i], float(i));
  };

  ResetDispatchStats();
  run(/*est_ops=*/999);   // below
  run(/*est_ops=*/1000);  // at the boundary: still serial (<=)
  DispatchCounts c = DispatchStatsFor(KernelCost::kElementwise);
  EXPECT_EQ(c.serial, 2);
  EXPECT_EQ(c.pooled, 0);

  ResetDispatchStats();
  run(/*est_ops=*/1001);  // above: pooled
  c = DispatchStatsFor(KernelCost::kElementwise);
  EXPECT_EQ(c.serial, 0);
  EXPECT_EQ(c.pooled, 1);
}

TEST_F(SimdTest, NonPositiveCutoffDisablesSerialBySize) {
  SetComputeThreads(2);
  SetParallelOversubscribe(true);
  SetSerialCutoff(KernelCost::kGemm, 0);
  ResetDispatchStats();
  ComputeParallelFor(KernelCost::kGemm, /*est_ops=*/1, 0, 64, 8,
                     [](int64_t, int64_t) {});
  DispatchCounts c = DispatchStatsFor(KernelCost::kGemm);
  EXPECT_EQ(c.serial, 0);
  EXPECT_EQ(c.pooled, 1);
}

TEST_F(SimdTest, SingleChunkRangeRunsInlineRegardlessOfEstimate) {
  SetComputeThreads(2);
  SetParallelOversubscribe(true);
  ResetDispatchStats();
  ComputeParallelFor(KernelCost::kGemm, /*est_ops=*/int64_t{1} << 30, 0, 8,
                     /*grain=*/8, [](int64_t, int64_t) {});
  DispatchCounts c = DispatchStatsFor(KernelCost::kGemm);
  EXPECT_EQ(c.serial, 1);
  EXPECT_EQ(c.pooled, 0);
}

TEST_F(SimdTest, WidthOneCountsAsSerialEvenAboveCutoff) {
  SetComputeThreads(1);
  SetParallelOversubscribe(false);
  ResetDispatchStats();
  ComputeParallelFor(KernelCost::kAdam, /*est_ops=*/int64_t{1} << 30, 0, 1024,
                     /*grain=*/8, [](int64_t, int64_t) {});
  DispatchCounts c = DispatchStatsFor(KernelCost::kAdam);
  EXPECT_EQ(c.serial, 1);
  EXPECT_EQ(c.pooled, 0);
}

}  // namespace
}  // namespace ratel
