#include <gtest/gtest.h>

#include <string>

#include "baselines/colossal_ai.h"
#include "baselines/deepspeed.h"
#include "baselines/fast_dit.h"
#include "baselines/flash_neuron.h"
#include "baselines/megatron.h"
#include "common/units.h"
#include "core/ratel_system.h"
#include "hw/catalog.h"
#include "model/transformer_config.h"

namespace ratel {
namespace {

ServerConfig Server4090(int64_t mem_gib, int ssds = 12) {
  return catalog::EvaluationServer(catalog::Rtx4090(), mem_gib * kGiB, ssds);
}

// ---------- Maximum trainable model size (Figs. 2a, 6) ----------

TEST(FeasibilityTest, FlashNeuronCapsNearOneAndAHalfBillion) {
  // Section III-A: FlashNeuron fails even a 6B model on a 24 GB GPU;
  // Fig. 2a marks its ceiling at ~1.55B.
  FlashNeuronSystem fn;
  const double max_b = fn.MaxTrainableBillions(Server4090(768), 1);
  EXPECT_GT(max_b, 0.8);
  EXPECT_LT(max_b, 2.5);
  auto cfg6 = LlmFromTableIV("6B");
  ASSERT_TRUE(cfg6.ok());
  EXPECT_FALSE(fn.CanTrain(*cfg6, 1, Server4090(768)));
}

TEST(FeasibilityTest, ZeroInfinityCeilingNear135BAt768) {
  // Section V-F: "the 135B model (the largest model ZeRO-Infinity can
  // fine-tune)" on the 768 GB server.
  ZeroInfinitySystem zi;
  const double max_b = zi.MaxTrainableBillions(Server4090(768), 1);
  EXPECT_NEAR(max_b, 135.0, 25.0);
  auto cfg = LlmFromTableIV("175B");
  ASSERT_TRUE(cfg.ok());
  EXPECT_FALSE(zi.CanTrain(*cfg, 1, Server4090(768)));
}

TEST(FeasibilityTest, ZeroOffloadBoundByHostMemory) {
  ZeroOffloadSystem zo;
  const double at768 = zo.MaxTrainableBillions(Server4090(768), 1);
  const double at256 = zo.MaxTrainableBillions(Server4090(256), 1);
  EXPECT_NEAR(at768, 47.0, 10.0);  // ~main_memory / 16 bytes per param
  EXPECT_LT(at256, at768);
  EXPECT_GT(at256, 5.0);
}

TEST(FeasibilityTest, Ratel175BOn4080With256GB) {
  // Headline claim: "Ratel succeeds in training a 175B model even with
  // only 256 GB main memory and RTX 4080".
  RatelSystem ratel;
  auto cfg = LlmFromTableIV("175B");
  ASSERT_TRUE(cfg.ok());
  const ServerConfig s4080 =
      catalog::EvaluationServer(catalog::Rtx4080(), 256 * kGiB, 12);
  std::string reason;
  EXPECT_TRUE(ratel.CanTrain(*cfg, 1, s4080, &reason)) << reason;
}

TEST(FeasibilityTest, Ratel276BOn4090With768GBButNot412B) {
  // Fig. 6a: Ratel reaches 276B under 768 GB (2.04x ZeRO-Infinity);
  // 412B exceeds the GPU working set.
  RatelSystem ratel;
  auto c276 = LlmFromTableIV("276B");
  auto c412 = LlmFromTableIV("412B");
  ASSERT_TRUE(c276.ok() && c412.ok());
  std::string reason;
  EXPECT_TRUE(ratel.CanTrain(*c276, 1, Server4090(768), &reason)) << reason;
  EXPECT_FALSE(ratel.CanTrain(*c412, 1, Server4090(768)));
  // And 276B needs more host memory than 256 GB provides.
  EXPECT_FALSE(ratel.CanTrain(*c276, 1, Server4090(256)));
}

TEST(FeasibilityTest, RatelDominatesBaselinesAcrossMemorySizes) {
  RatelSystem ratel;
  ZeroInfinitySystem zi;
  ZeroOffloadSystem zo;
  ColossalAiSystem ca;
  for (int64_t mem : {128, 256, 512, 768}) {
    const ServerConfig s = Server4090(mem);
    const double r = ratel.MaxTrainableBillions(s, 1);
    EXPECT_GT(r, zi.MaxTrainableBillions(s, 1)) << mem;
    EXPECT_GT(r, zo.MaxTrainableBillions(s, 1)) << mem;
    EXPECT_GT(r, ca.MaxTrainableBillions(s, 1)) << mem;
  }
}

TEST(FeasibilityTest, MaxModelSizeMonotoneInMainMemory) {
  for (TrainingSystem* sys :
       std::initializer_list<TrainingSystem*>{}) {
    (void)sys;
  }
  RatelSystem ratel;
  ZeroInfinitySystem zi;
  double prev_r = 0.0, prev_z = 0.0;
  for (int64_t mem : {128, 256, 384, 512, 640, 768}) {
    const ServerConfig s = Server4090(mem);
    const double r = ratel.MaxTrainableBillions(s, 1);
    const double z = zi.MaxTrainableBillions(s, 1);
    EXPECT_GE(r, prev_r - 1e-6) << mem;
    EXPECT_GE(z, prev_z - 1e-6) << mem;
    prev_r = r;
    prev_z = z;
  }
}

TEST(FeasibilityTest, MaxMicroBatchMonotoneAndPositive) {
  RatelSystem ratel;
  auto cfg = LlmFromTableIV("13B");
  ASSERT_TRUE(cfg.ok());
  const int b = ratel.MaxMicroBatch(*cfg, Server4090(768));
  EXPECT_GE(b, 64);   // Fig. 5a sweeps 13B to batch 128
  EXPECT_LE(b, 512);
  auto big = LlmFromTableIV("175B");
  ASSERT_TRUE(big.ok());
  const int b_big = ratel.MaxMicroBatch(*big, Server4090(768));
  EXPECT_GE(b_big, 1);
  EXPECT_LT(b_big, b);
}

// ---------- Throughput ordering (Fig. 5) ----------

TEST(ThroughputTest, RatelBeatsAllBaselinesOn13B) {
  const ServerConfig s = Server4090(768);
  auto cfg = LlmFromTableIV("13B");
  ASSERT_TRUE(cfg.ok());
  RatelSystem ratel;
  ZeroInfinitySystem zi;
  ZeroOffloadSystem zo;
  ColossalAiSystem ca;
  auto r = ratel.Run(*cfg, 32, s);
  auto z = zi.Run(*cfg, 32, s);
  auto o = zo.Run(*cfg, 32, s);
  auto c = ca.Run(*cfg, 32, s);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_TRUE(z.ok()) << z.status().ToString();
  ASSERT_TRUE(o.ok()) << o.status().ToString();
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  // Fig. 5a ordering: Ratel > ZeRO-Offload > ZeRO-Infinity > Colossal-AI.
  EXPECT_GT(r->tokens_per_s, o->tokens_per_s);
  EXPECT_GT(o->tokens_per_s, z->tokens_per_s);
  EXPECT_GT(z->tokens_per_s, c->tokens_per_s);
  // Speedup magnitudes in the paper's neighbourhood (2.32x / 3.46x /
  // 8.02x at the best batch; at a common batch we accept a wide band).
  EXPECT_GT(r->tokens_per_s / z->tokens_per_s, 1.8);
  EXPECT_GT(r->tokens_per_s / c->tokens_per_s, 3.0);
}

TEST(ThroughputTest, RatelNearPeakTflopsForMidSizes) {
  // Fig. 5c: Ratel achieves 90-95% of measured peak below 70B.
  const ServerConfig s = Server4090(768);
  RatelSystem ratel;
  auto cfg = LlmFromTableIV("13B");
  ASSERT_TRUE(cfg.ok());
  const int batch = ratel.MaxMicroBatch(*cfg, s);
  auto r = ratel.Run(*cfg, batch, s);
  ASSERT_TRUE(r.ok());
  const double frac = r->model_tflops * 1e12 / s.gpu.peak_fp16_flops;
  EXPECT_GT(frac, 0.70);
  EXPECT_LE(frac, 1.0);
}

TEST(ThroughputTest, ZeroInfinityGpuBusyNearPaper) {
  // Fig. 2b: ~36% GPU busy for 13B at batch 32.
  const ServerConfig s = Server4090(768);
  ZeroInfinitySystem zi;
  auto cfg = LlmFromTableIV("13B");
  ASSERT_TRUE(cfg.ok());
  auto r = zi.Run(*cfg, 32, s);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->gpu_busy_frac, 0.2);
  EXPECT_LT(r->gpu_busy_frac, 0.55);
}

TEST(ThroughputTest, ZeroInfinityOptimizerShareMatchesFig2c) {
  // Fig. 2c: the optimizer stage is 30-60% of an iteration.
  const ServerConfig s = Server4090(768);
  ZeroInfinitySystem zi;
  for (const char* model : {"13B", "30B"}) {
    auto cfg = LlmFromTableIV(model);
    ASSERT_TRUE(cfg.ok());
    auto r = zi.Run(*cfg, 16, s);
    ASSERT_TRUE(r.ok()) << model;
    const double share = r->t_optimizer / r->t_iter;
    EXPECT_GT(share, 0.20) << model;
    EXPECT_LT(share, 0.65) << model;
  }
}

TEST(ThroughputTest, ActiveOffloadAblationOrdering) {
  // Fig. 7: Ratel Optimized > Ratel Naive > Ratel+ZeRO at large batch.
  const ServerConfig s = Server4090(768);
  auto cfg = LlmFromTableIV("13B");
  ASSERT_TRUE(cfg.ok());
  RatelOptions opt;
  RatelOptions naive;
  naive.grad_mode = GradientOffloadMode::kNaiveActive;
  RatelOptions zero;
  zero.grad_mode = GradientOffloadMode::kSerializedPipelined;
  auto t_opt = RatelSystem(opt).Run(*cfg, 64, s);
  auto t_naive = RatelSystem(naive).Run(*cfg, 64, s);
  auto t_zero = RatelSystem(zero).Run(*cfg, 64, s);
  ASSERT_TRUE(t_opt.ok() && t_naive.ok() && t_zero.ok());
  EXPECT_GE(t_opt->tokens_per_s, t_naive->tokens_per_s * 0.999);
  EXPECT_GT(t_opt->tokens_per_s, t_zero->tokens_per_s);
}

TEST(ThroughputTest, ActivationStrategyHolisticWins) {
  // Fig. 9a: at the same batch, the holistic planner beats the ablated
  // strategies on the Ratel substrate.
  const ServerConfig s = Server4090(512);
  auto cfg = LlmFromTableIV("70B");
  ASSERT_TRUE(cfg.ok());
  const int batch = 32;
  auto best = RatelSystem().Run(*cfg, batch, s);
  ASSERT_TRUE(best.ok()) << best.status().ToString();
  for (ActivationStrategy strat :
       {ActivationStrategy::kStaticInterBlock, ActivationStrategy::kCapuchin,
        ActivationStrategy::kG10InactiveTime,
        ActivationStrategy::kCheckmate}) {
    RatelOptions o;
    o.act_strategy = strat;
    auto r = RatelSystem(o).Run(*cfg, batch, s);
    ASSERT_TRUE(r.ok()) << ActivationStrategyName(strat) << ": "
                        << r.status().ToString();
    // The holistic planner optimizes the closed-form T_iter; the DES adds
    // pipeline-fill effects, so ablations may land within ~2% of it (the
    // paper's Fig. 9a gaps at 512 GB are similarly thin).
    EXPECT_GE(best->tokens_per_s, r->tokens_per_s * 0.98)
        << ActivationStrategyName(strat);
  }
}

TEST(ThroughputTest, CheckmateFailsAt128GBFor70B) {
  // Table V: Ratel+CM "Failed" with 128 GB main memory.
  RatelOptions o;
  o.act_strategy = ActivationStrategy::kCheckmate;
  RatelSystem cm(o);
  auto cfg = LlmFromTableIV("70B");
  ASSERT_TRUE(cfg.ok());
  EXPECT_FALSE(cm.CanTrain(*cfg, 16, Server4090(128)));
  EXPECT_TRUE(cm.CanTrain(*cfg, 16, Server4090(512)));
}

TEST(ThroughputTest, CpuActLimitsModelSizeVsRatel) {
  // Fig. 8: swapping activations only to main memory trains 2-5x smaller
  // models at 128 GB.
  RatelSystem ratel;
  RatelOptions o;
  o.act_strategy = ActivationStrategy::kMainMemoryOnly;
  RatelSystem cpu_act(o);
  const ServerConfig s = Server4090(128);
  const double r = ratel.MaxTrainableBillions(s, 60);
  const double c = cpu_act.MaxTrainableBillions(s, 60);
  EXPECT_GT(r, c * 1.8);
}

// ---------- G10 (Fig. 1b) ----------

TEST(G10Test, RequiresGpuDirectUnlessAssumed) {
  auto cfg = LlmFromTableIV("13B");
  ASSERT_TRUE(cfg.ok());
  G10System strict(/*assume_gpudirect=*/false);
  std::string reason;
  EXPECT_FALSE(strict.CanTrain(*cfg, 32, Server4090(768), &reason));
  EXPECT_NE(reason.find("GPUDirect"), std::string::npos);
  G10System simulated(/*assume_gpudirect=*/true);
  EXPECT_TRUE(simulated.CanTrain(*cfg, 32, Server4090(768)));
}

TEST(G10Test, OptimizerStageDominatedByStateTransfer) {
  // Fig. 1b: ~13 s optimizer stage for 13B/bsz32 (GPU compute ~0.1 s).
  G10System g10;
  auto cfg = LlmFromTableIV("13B");
  ASSERT_TRUE(cfg.ok());
  auto r = g10.Run(*cfg, 32, Server4090(768));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_NEAR(r->t_optimizer, 13.0, 5.0);
  // Ratel beats G10 end-to-end at the same batch.
  auto ratel = RatelSystem().Run(*cfg, 32, Server4090(768));
  ASSERT_TRUE(ratel.ok());
  EXPECT_GT(ratel->tokens_per_s, r->tokens_per_s);
}

// ---------- Fast-DiT / Megatron ----------

TEST(FastDiTTest, OomAtTenBillionOn24GB) {
  FastDiTSystem fd;
  auto small = DiTFromTableVI("0.67B");
  auto big = DiTFromTableVI("10B");
  ASSERT_TRUE(small.ok() && big.ok());
  EXPECT_TRUE(fd.CanTrain(*small, 4, Server4090(768)));
  std::string reason;
  EXPECT_FALSE(fd.CanTrain(*big, 1, Server4090(768), &reason));
  EXPECT_NE(reason.find("OOM"), std::string::npos);
}

TEST(FastDiTTest, RatelBeatsFastDiTOnSameModel) {
  // Fig. 12: Ratel sustains higher image/s because it trains at a much
  // larger batch.
  const ServerConfig s = Server4090(768);
  auto dit = DiTFromTableVI("1.4B");
  ASSERT_TRUE(dit.ok());
  FastDiTSystem fd;
  RatelSystem ratel;
  const int fd_batch = fd.MaxMicroBatch(*dit, s, 256);
  ASSERT_GE(fd_batch, 1);
  const int ratel_batch = ratel.MaxMicroBatch(*dit, s, 256);
  EXPECT_GT(ratel_batch, fd_batch);
  auto fr = fd.Run(*dit, fd_batch, s);
  auto rr = ratel.Run(*dit, ratel_batch, s);
  ASSERT_TRUE(fr.ok() && rr.ok());
  EXPECT_GT(rr->tokens_per_s, fr->tokens_per_s);  // images/s for DiT
}

TEST(MegatronTest, ThirtyBillionFitsButLargerDoesNot) {
  MegatronDgxBaseline mega(catalog::DgxA100());
  auto c30 = LlmFromTableIV("30B");
  auto c70 = LlmFromTableIV("70B");
  ASSERT_TRUE(c30.ok() && c70.ok());
  EXPECT_TRUE(mega.CanTrain(*c30, 8));
  EXPECT_FALSE(mega.CanTrain(*c70, 8));  // "largest model Megatron-LM can
                                         //  fine-tune on the DGX machine"
}

TEST(MegatronTest, CostEffectivenessComputed) {
  MegatronDgxBaseline mega(catalog::DgxA100());
  auto c30 = LlmFromTableIV("30B");
  ASSERT_TRUE(c30.ok());
  auto tps = mega.TokensPerSecond(*c30, 8);
  ASSERT_TRUE(tps.ok());
  EXPECT_GT(*tps, 1000.0);
  auto ce = mega.TokensPerSecondPerKiloDollar(*c30, 8);
  ASSERT_TRUE(ce.ok());
  EXPECT_NEAR(*ce, *tps / 200.0, 1e-6);
}

}  // namespace
}  // namespace ratel
