#include "optim/cpu_adam.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"

namespace ratel {
namespace {

/// Scalar textbook Adam used as the reference implementation.
void ReferenceAdamStep(const AdamConfig& cfg, int64_t t, double grad,
                       double* param, double* m, double* v) {
  *m = cfg.beta1 * *m + (1.0 - cfg.beta1) * grad;
  *v = cfg.beta2 * *v + (1.0 - cfg.beta2) * grad * grad;
  const double mhat = *m / (1.0 - std::pow(cfg.beta1, t));
  const double vhat = *v / (1.0 - std::pow(cfg.beta2, t));
  if (cfg.weight_decay != 0.0) *param -= cfg.lr * cfg.weight_decay * *param;
  *param -= cfg.lr * mhat / (std::sqrt(vhat) + cfg.eps);
}

TEST(CpuAdamTest, MatchesReferenceOverManySteps) {
  AdamConfig cfg;
  cfg.lr = 1e-2;
  CpuAdamKernel kernel(cfg);
  constexpr int64_t kN = 64;
  Rng rng(3);
  std::vector<float> params(kN), m(kN, 0.0f), v(kN, 0.0f);
  std::vector<double> rparams(kN), rm(kN, 0.0), rv(kN, 0.0);
  for (int64_t i = 0; i < kN; ++i) {
    params[i] = static_cast<float>(rng.NextGaussian());
    rparams[i] = params[i];
  }
  for (int64_t t = 1; t <= 50; ++t) {
    std::vector<float> grads(kN);
    for (int64_t i = 0; i < kN; ++i) {
      grads[i] = static_cast<float>(rng.NextGaussian() * 0.1);
    }
    kernel.Step(t, kN, grads.data(), params.data(), m.data(), v.data(),
                nullptr);
    for (int64_t i = 0; i < kN; ++i) {
      ReferenceAdamStep(cfg, t, grads[i], &rparams[i], &rm[i], &rv[i]);
    }
  }
  for (int64_t i = 0; i < kN; ++i) {
    EXPECT_NEAR(params[i], rparams[i], 2e-4) << i;
  }
}

TEST(CpuAdamTest, WeightDecayShrinksParameters) {
  AdamConfig cfg;
  cfg.lr = 1e-2;
  cfg.weight_decay = 0.1;
  CpuAdamKernel kernel(cfg);
  std::vector<float> params{1.0f}, m{0.0f}, v{0.0f};
  std::vector<float> zero_grad{0.0f};
  const float before = params[0];
  kernel.Step(1, 1, zero_grad.data(), params.data(), m.data(), v.data(),
              nullptr);
  EXPECT_LT(params[0], before);  // decay acts even with zero gradient
}

TEST(CpuAdamTest, DescendsQuadraticBowl) {
  // Minimize f(x) = 0.5 * x^2 -> gradient x. Adam should reach ~0.
  AdamConfig cfg;
  cfg.lr = 0.05;
  CpuAdamKernel kernel(cfg);
  std::vector<float> x{5.0f}, m{0.0f}, v{0.0f};
  for (int64_t t = 1; t <= 400; ++t) {
    std::vector<float> g{x[0]};
    kernel.Step(t, 1, g.data(), x.data(), m.data(), v.data(), nullptr);
  }
  EXPECT_NEAR(x[0], 0.0f, 0.05f);
}

TEST(CpuAdamTest, EmitsFp16CopyMatchingMaster) {
  AdamConfig cfg;
  CpuAdamKernel kernel(cfg);
  constexpr int64_t kN = 16;
  std::vector<float> params(kN, 0.5f), m(kN, 0.0f), v(kN, 0.0f);
  std::vector<float> grads(kN, 1.0f);
  std::vector<Fp16> p16(kN);
  kernel.Step(1, kN, grads.data(), params.data(), m.data(), v.data(),
              p16.data());
  for (int64_t i = 0; i < kN; ++i) {
    EXPECT_NEAR(HalfToFloat(p16[i]), params[i], 1e-3f);
  }
}

TEST(CpuAdamTest, Fp16GradPathMatchesFp32Path) {
  AdamConfig cfg;
  cfg.lr = 1e-2;
  CpuAdamKernel kernel(cfg);
  constexpr int64_t kN = 8192;  // spans multiple conversion tiles
  Rng rng(17);
  std::vector<float> g32(kN);
  std::vector<Fp16> g16(kN);
  for (int64_t i = 0; i < kN; ++i) {
    g16[i] = FloatToHalf(static_cast<float>(rng.NextGaussian()));
    g32[i] = HalfToFloat(g16[i]);  // identical numeric inputs
  }
  std::vector<float> pa(kN, 1.0f), ma(kN, 0.0f), va(kN, 0.0f);
  std::vector<float> pb(kN, 1.0f), mb(kN, 0.0f), vb(kN, 0.0f);
  kernel.Step(1, kN, g32.data(), pa.data(), ma.data(), va.data(), nullptr);
  kernel.StepFp16Grads(1, kN, g16.data(), pb.data(), mb.data(), vb.data(),
                       nullptr);
  for (int64_t i = 0; i < kN; ++i) {
    ASSERT_FLOAT_EQ(pa[i], pb[i]) << i;
  }
}

TEST(ChunkedCpuAdamTest, RegisterAndStep) {
  ChunkedCpuAdam adam(AdamConfig{});
  ASSERT_TRUE(adam.Register("w", {1.0f, 2.0f, 3.0f}).ok());
  EXPECT_EQ(adam.num_tensors(), 1);
  EXPECT_EQ(adam.StateBytes(), 3 * 12);
  std::vector<Fp16> grads{FloatToHalf(0.1f), FloatToHalf(0.1f),
                          FloatToHalf(0.1f)};
  std::vector<Fp16> p16;
  ASSERT_TRUE(adam.StepTensor("w", grads, &p16).ok());
  ASSERT_EQ(p16.size(), 3u);
  auto master = adam.MasterParams("w");
  ASSERT_TRUE(master.ok());
  EXPECT_LT((**master)[0], 1.0f);  // moved against positive gradient
}

TEST(ChunkedCpuAdamTest, ErrorsSurfaceAsStatus) {
  ChunkedCpuAdam adam(AdamConfig{});
  ASSERT_TRUE(adam.Register("w", {1.0f}).ok());
  EXPECT_EQ(adam.Register("w", {1.0f}).code(), StatusCode::kAlreadyExists);
  std::vector<Fp16> wrong_size{0, 0};
  EXPECT_EQ(adam.StepTensor("w", wrong_size, nullptr).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(adam.StepTensor("missing", wrong_size, nullptr).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(adam.MasterParams("missing").status().code(),
            StatusCode::kNotFound);
}

TEST(ChunkedCpuAdamTest, PerTensorStepCountsIndependent) {
  // Two tensors stepped unequal numbers of times must use their own bias
  // correction, so equal gradients yield equal updates at equal counts.
  ChunkedCpuAdam adam(AdamConfig{});
  ASSERT_TRUE(adam.Register("a", {1.0f}).ok());
  ASSERT_TRUE(adam.Register("b", {1.0f}).ok());
  std::vector<Fp16> g{FloatToHalf(0.5f)};
  ASSERT_TRUE(adam.StepTensor("a", g, nullptr).ok());
  ASSERT_TRUE(adam.StepTensor("a", g, nullptr).ok());
  ASSERT_TRUE(adam.StepTensor("b", g, nullptr).ok());
  ASSERT_TRUE(adam.StepTensor("b", g, nullptr).ok());
  auto a = adam.MasterParams("a");
  auto b = adam.MasterParams("b");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_FLOAT_EQ((**a)[0], (**b)[0]);
}

}  // namespace
}  // namespace ratel
