#include <gtest/gtest.h>
#include <unistd.h>

#include <cmath>
#include <string>
#include <vector>

#include "autograd/ops.h"
#include "autograd/transformer.h"
#include "baselines/deepspeed.h"
#include "baselines/stronghold.h"
#include "common/rng.h"
#include "common/units.h"
#include "core/ratel_system.h"
#include "core/run_estimator.h"
#include "hw/catalog.h"
#include "model/transformer_config.h"
#include "runtime/dataset.h"
#include "runtime/ratel_trainer.h"
#include "sim/engine.h"

namespace ratel {
namespace {

std::string TempPath(const std::string& tag) {
  return ::testing::TempDir() + "/ratel_ext2_" + tag + "_" +
         std::to_string(::getpid());
}

// ---------- New autograd ops ----------

TEST(ExtraOpsTest, SigmoidForwardAndGradient) {
  ag::Variable p = ag::Variable::Parameter({3}, {0.0f, 2.0f, -2.0f}, "p");
  ag::Variable y = ag::Sigmoid(p);
  EXPECT_NEAR(y.value()[0], 0.5f, 1e-6f);
  EXPECT_NEAR(y.value()[1], 0.8808f, 1e-3f);
  ag::Variable loss = ag::Mean(y);
  loss.Backward();
  // d/dx sigmoid(0) / 3 = 0.25 / 3.
  EXPECT_NEAR(p.grad()[0], 0.25f / 3.0f, 1e-5f);
}

TEST(ExtraOpsTest, TanhGradientNumeric) {
  const float eps = 1e-3f;
  ag::Variable p = ag::Variable::Parameter({1}, {0.7f}, "p");
  ag::Variable loss = ag::Mean(ag::Tanh(p));
  loss.Backward();
  ag::Variable pp = ag::Variable::Parameter({1}, {0.7f + eps}, "p");
  ag::Variable pm = ag::Variable::Parameter({1}, {0.7f - eps}, "p");
  const float numeric = (ag::Mean(ag::Tanh(pp)).value()[0] -
                         ag::Mean(ag::Tanh(pm)).value()[0]) /
                        (2 * eps);
  EXPECT_NEAR(p.grad()[0], numeric, 1e-3f);
}

TEST(ExtraOpsTest, MeanIsUniformGradient) {
  ag::Variable p =
      ag::Variable::Parameter({4}, {1.0f, 2.0f, 3.0f, 4.0f}, "p");
  ag::Variable m = ag::Mean(p);
  EXPECT_FLOAT_EQ(m.value()[0], 2.5f);
  m.Backward();
  for (float g : p.grad()) EXPECT_FLOAT_EQ(g, 0.25f);
}

TEST(ExtraOpsTest, DropoutMaskDeterministicAndScaled) {
  std::vector<float> ones(1000, 1.0f);
  ag::Variable a = ag::Variable::Parameter({1000}, ones, "a");
  ag::Variable d1 = ag::Dropout(a, 0.4f, 99);
  ag::Variable d2 = ag::Dropout(a, 0.4f, 99);
  EXPECT_EQ(d1.value(), d2.value());  // same seed, same mask
  int zeros = 0;
  double sum = 0.0;
  for (float v : d1.value()) {
    if (v == 0.0f) {
      ++zeros;
    } else {
      EXPECT_NEAR(v, 1.0f / 0.6f, 1e-5f);  // inverted scaling
    }
    sum += v;
  }
  EXPECT_NEAR(zeros / 1000.0, 0.4, 0.06);
  EXPECT_NEAR(sum / 1000.0, 1.0, 0.08);  // expectation preserved
  // Gradient flows only through kept elements.
  ag::Variable loss = ag::Mean(d1);
  loss.Backward();
  for (size_t i = 0; i < 1000; ++i) {
    if (d1.value()[i] == 0.0f) {
      EXPECT_EQ(a.grad()[i], 0.0f);
    } else {
      EXPECT_GT(a.grad()[i], 0.0f);
    }
  }
}

TEST(ExtraOpsTest, DropoutRateZeroIsIdentity) {
  ag::Variable a = ag::Variable::Parameter({5}, {1, 2, 3, 4, 5}, "a");
  EXPECT_EQ(ag::Dropout(a, 0.0f, 1).value(), a.value());
}

TEST(ExtraOpsTest, AccuracyCountsArgmaxMatches) {
  // Rows: argmax = 2, 0, 1.
  ag::Variable logits = ag::Variable::Constant(
      {3, 3}, {0.f, 1.f, 5.f, 9.f, 1.f, 2.f, 0.f, 4.f, 1.f});
  EXPECT_DOUBLE_EQ(ag::Accuracy(logits, {2, 0, 1}), 1.0);
  EXPECT_DOUBLE_EQ(ag::Accuracy(logits, {2, 1, 1}), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(ag::Accuracy(logits, {0, 1, 2}), 0.0);
}

TEST(ExtraOpsTest, LogitsConsistentWithLoss) {
  ag::TinyGptConfig cfg;
  cfg.vocab_size = 16;
  cfg.seq_len = 4;
  cfg.hidden_dim = 8;
  cfg.num_heads = 2;
  cfg.num_layers = 1;
  ag::TinyGpt model(cfg, 4);
  std::vector<int64_t> ids{1, 2, 3, 4}, targets{2, 3, 4, 5};
  ag::Variable logits = model.Logits(ids, 1);
  ag::Variable ce = ag::SoftmaxCrossEntropy(logits, targets);
  ag::Variable loss = model.Loss(ids, targets, 1);
  EXPECT_FLOAT_EQ(ce.value()[0], loss.value()[0]);
}

// ---------- Critical path ----------

TEST(CriticalPathTest, FollowsDependencyChain) {
  SimEngine eng;
  const ResourceId gpu = eng.AddResource("gpu", 1.0);
  const ResourceId link = eng.AddResource("link", 1.0);
  const TaskId a = eng.AddTask("a", gpu, 3.0);
  eng.AddTask("side", link, 1.0);  // off the critical path
  const TaskId b = eng.AddTask("b", link, 2.0, {a});
  const TaskId c = eng.AddTask("c", gpu, 4.0, {b});
  ASSERT_TRUE(eng.Run().ok());
  const auto path = eng.CriticalPath();
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[0].name, "a");
  EXPECT_EQ(path[1].name, "b");
  EXPECT_EQ(path[2].name, "c");
  (void)c;
  // The path spans the makespan.
  EXPECT_NEAR(path.back().timing.finish, eng.Makespan(), 1e-9);
  EXPECT_NEAR(path.front().timing.start, 0.0, 1e-9);
}

TEST(CriticalPathTest, FollowsQueueBlocker) {
  // Two sequential tasks on one resource with no dependency: the second
  // waits in queue; the path must include both.
  SimEngine eng;
  const ResourceId r = eng.AddResource("r", 1.0);
  const TaskId a = eng.AddTask("first", r, 2.0);
  eng.AddTask("second", r, 2.0, {a});  // serialized
  ASSERT_TRUE(eng.Run().ok());
  const auto path = eng.CriticalPath();
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(path[0].name, "first");
  EXPECT_EQ(path[1].name, "second");
}

// ---------- StrongHold ----------

TEST(StrongHoldTest, CapacityMatchesZeroOffloadButFasterIteration) {
  StrongHoldSystem sh;
  ZeroOffloadSystem zo;
  const ServerConfig s =
      catalog::EvaluationServer(catalog::Rtx4090(), 768 * kGiB, 12);
  // Same DRAM-bound capacity class...
  EXPECT_NEAR(sh.MaxTrainableBillions(s, 1), zo.MaxTrainableBillions(s, 1),
              8.0);
  // ...but the overlapped optimizer beats the serialized one.
  auto cfg = LlmFromTableIV("13B");
  ASSERT_TRUE(cfg.ok());
  auto rs = sh.Run(*cfg, 32, s);
  auto rz = zo.Run(*cfg, 32, s);
  ASSERT_TRUE(rs.ok() && rz.ok());
  EXPECT_GT(rs->tokens_per_s, rz->tokens_per_s);
  // Ratel still wins: it also lifts the capacity ceiling via SSDs.
  auto rr = RatelSystem().Run(*cfg, 32, s);
  ASSERT_TRUE(rr.ok());
  EXPECT_GT(rr->tokens_per_s, rs->tokens_per_s * 0.95);
  EXPECT_GT(RatelSystem().MaxTrainableBillions(s, 1),
            sh.MaxTrainableBillions(s, 1));
}

// ---------- Run estimator ----------

TEST(RunEstimatorTest, ScalesLinearlyWithIterations) {
  const ServerConfig s =
      catalog::EvaluationServer(catalog::Rtx4090(), 256 * kGiB, 12);
  FineTuneRunEstimator est(s);
  auto cfg = LlmFromTableIV("13B");
  ASSERT_TRUE(cfg.ok());
  auto e1 = est.Estimate(*cfg, 32, 100);
  auto e2 = est.Estimate(*cfg, 32, 1000);
  ASSERT_TRUE(e1.ok() && e2.ok());
  EXPECT_GT(e1->iteration_seconds, 0.0);
  EXPECT_NEAR(e1->profiling_seconds, 2.5 * e1->iteration_seconds, 1e-9);
  // 900 extra iterations at steady state.
  EXPECT_NEAR(e2->total_seconds - e1->total_seconds,
              900 * e1->iteration_seconds, 1e-6 * e2->total_seconds);
  EXPECT_NEAR(e2->total_ssd_writes_bytes / e1->total_ssd_writes_bytes, 10.0,
              1e-9);
}

TEST(RunEstimatorTest, WritesDominatedByModelStates) {
  const ServerConfig s =
      catalog::EvaluationServer(catalog::Rtx4090(), 768 * kGiB, 12);
  FineTuneRunEstimator est(s);
  auto cfg = LlmFromTableIV("13B");
  ASSERT_TRUE(cfg.ok());
  auto e = est.Estimate(*cfg, 32, 1);
  ASSERT_TRUE(e.ok());
  const double p = static_cast<double>(cfg->ParameterCount());
  EXPECT_GE(e->ssd_writes_per_iter_bytes, 14.0 * p);
  EXPECT_GE(e->ssd_reads_per_iter_bytes, 16.0 * p);
  EXPECT_GT(e->endurance_fraction, 0.0);
  EXPECT_LT(e->endurance_fraction, 1e-2);  // one iteration is harmless
  EXPECT_FALSE(FormatEstimate(*e).empty());
}

TEST(RunEstimatorTest, LongRunConsumesMeaningfulEndurance) {
  // 175B for 10k iterations writes ~24 PB: a real fraction of a 12-drive
  // array's 84 PB rating — the practical concern the endurance model
  // captures.
  const ServerConfig s =
      catalog::EvaluationServer(catalog::Rtx4090(), 768 * kGiB, 12);
  FineTuneRunEstimator est(s);
  auto cfg = LlmFromTableIV("175B");
  ASSERT_TRUE(cfg.ok());
  auto e = est.Estimate(*cfg, 8, 10000);
  ASSERT_TRUE(e.ok());
  EXPECT_GT(e->endurance_fraction, 0.1);
  EXPECT_LT(e->endurance_fraction, 1.0);
}

// ---------- Host tier cache in the trainer ----------

TEST(TrainerCacheTest, CacheServesHotModelStates) {
  ag::TinyGptConfig cfg;
  cfg.vocab_size = 32;
  cfg.seq_len = 8;
  cfg.hidden_dim = 16;
  cfg.num_heads = 2;
  cfg.num_layers = 2;
  ag::TinyGpt model(cfg, 3);
  TrainerOptions opts;
  opts.store_dir = TempPath("cache");
  opts.host_cache_bytes = 64 * kMiB;  // fits the whole tiny model
  auto trainer = RatelTrainer::Create(&model, opts);
  ASSERT_TRUE(trainer.ok());
  SyntheticDataset ds(SyntheticTask::kAffineMap, 32, 8, 1);
  for (int step = 0; step < 3; ++step) {
    const TokenBatch b = ds.NextBatch(2);
    ASSERT_TRUE((*trainer)->TrainStep(b.ids, b.targets, 2).ok());
  }
  const TransferStats xfer = (*trainer)->transfer_stats();
  EXPECT_GT(xfer.cache.hits, 0);
  EXPECT_GT(xfer.DramHitRate(), 0.9);  // everything hot after warmup
  // Per-flow view: with the whole model cached, almost every read was
  // served from DRAM rather than the store.
  int64_t from_cache = 0, read = 0;
  for (int i = 0; i < kNumFlowClasses; ++i) {
    from_cache += xfer.flow[i].bytes_from_cache;
    read += xfer.flow[i].bytes_read;
  }
  EXPECT_GT(from_cache, read / 2);
  // Reconciliation: reads not served by DRAM are exactly the store's.
  EXPECT_EQ(read - from_cache, xfer.store_bytes_read);
}

TEST(TrainerCacheTest, TrainingNumericsUnchangedByCache) {
  auto run = [&](int64_t cache_bytes) {
    ag::TinyGptConfig cfg;
    cfg.vocab_size = 32;
    cfg.seq_len = 8;
    cfg.hidden_dim = 16;
    cfg.num_heads = 2;
    cfg.num_layers = 1;
    ag::TinyGpt model(cfg, 8);
    TrainerOptions opts;
    opts.store_dir = TempPath("cache_eq" + std::to_string(cache_bytes));
    opts.host_cache_bytes = cache_bytes;
    auto trainer = RatelTrainer::Create(&model, opts);
    EXPECT_TRUE(trainer.ok());
    SyntheticDataset ds(SyntheticTask::kPairSum, 32, 8, 6);
    for (int step = 0; step < 3; ++step) {
      const TokenBatch b = ds.NextBatch(2);
      EXPECT_TRUE((*trainer)->TrainStep(b.ids, b.targets, 2).ok());
    }
    std::vector<float> w;
    EXPECT_TRUE(
        (*trainer)->optimizer().FetchMasterParams("blk0/w_up", &w).ok());
    return w;
  };
  EXPECT_EQ(run(0), run(32 * kMiB));
}

}  // namespace
}  // namespace ratel
