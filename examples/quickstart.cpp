// Quickstart: plan and simulate fine-tuning a 13B model on the paper's
// commodity server (RTX 4090, 256 GB DRAM, 12 NVMe SSDs).
//
// This mirrors the Ratel workflow of Fig. 4: profile the hardware
// (Ratel_init), build the holistic activation-swapping plan, and run one
// training iteration with optimized active gradient offloading — here on
// the calibrated simulator substrate, printing the same stage/utilization
// breakdown as the paper's Fig. 1c.

#include <cstdio>
#include <iostream>

#include "common/units.h"
#include "core/activation_planner.h"
#include "core/hardware_profile.h"
#include "core/ratel_system.h"
#include "core/run_estimator.h"
#include "hw/catalog.h"
#include "model/transformer_config.h"

int main() {
  using namespace ratel;

  // 1. Describe the machine (Table III) and the job (Table IV).
  const ServerConfig server =
      catalog::EvaluationServer(catalog::Rtx4090(), 256 * kGiB, /*ssds=*/12);
  auto config = LlmFromTableIV("13B");
  if (!config.ok()) {
    std::cerr << config.status().ToString() << "\n";
    return 1;
  }
  const int batch = 32;

  std::cout << "Server : " << server.gpu.name << ", "
            << FormatBytes(server.main_memory_bytes) << " DRAM, "
            << server.ssds.count << "x " << server.ssds.ssd.name << "\n";
  std::cout << "Model  : " << config->name << " ("
            << config->ParameterCount() / 1e9 << "B params), batch " << batch
            << "\n\n";

  // 2. Hardware-aware profiling (Section IV-B).
  const WorkloadProfile wl = WorkloadProfile::Build(*config, batch);
  auto hw = HardwareProfiler(server).Profile(wl);
  if (!hw.ok()) {
    std::cerr << "profiling failed: " << hw.status().ToString() << "\n";
    return 1;
  }
  std::cout << "Profile: THP_G=" << hw->thp_g / 1e12 << " TFLOPS, BW_G="
            << FormatBandwidth(hw->bw_g) << ", BW_S2M="
            << FormatBandwidth(hw->bw_s2m) << ", MEM_avail="
            << FormatBytes(hw->mem_avail_m) << "\n";
  std::cout << "Tensors: A_all=" << FormatBytes(wl.total_activation_bytes())
            << ", A_interBlock="
            << FormatBytes(wl.inter_block_activation_bytes())
            << ", model states="
            << FormatBytes(16 * wl.param_count()) << "\n\n";

  // 3. Holistic traffic-aware activation swapping (Section IV-D, Alg. 1).
  RatelSystem ratel;
  auto plan = ratel.PlanActivations(*config, batch, server);
  if (!plan.ok()) {
    std::cerr << "planning failed: " << plan.status().ToString() << "\n";
    return 1;
  }
  std::cout << "Plan   : swap " << FormatBytes(plan->a_g2m) << " ("
            << plan->swapped_units.size() << " units, "
            << FormatBytes(plan->ssd_bytes) << " spilling to SSD), case "
            << SwapCaseName(plan->swap_case) << ", predicted T_iter="
            << FormatSeconds(plan->predicted_iter_time) << "\n\n";

  // 4. Run one iteration (active gradient offloading of Section IV-C).
  auto result = ratel.Run(*config, batch, server);
  if (!result.ok()) {
    std::cerr << "simulation failed: " << result.status().ToString() << "\n";
    return 1;
  }
  std::printf("Forward  %6.2f s  (GPU %3.0f%%, M2G %3.0f%%, G2M %3.0f%%, "
              "SSD %3.0f%%)\n",
              result->t_forward, 100 * result->forward.gpu_busy_frac,
              100 * result->forward.m2g_busy_frac,
              100 * result->forward.g2m_busy_frac,
              100 * result->forward.ssd_busy_frac);
  std::printf("Backward %6.2f s  (GPU %3.0f%%, M2G %3.0f%%, G2M %3.0f%%, "
              "SSD %3.0f%%, CPU-opt %3.0f%%)\n",
              result->t_backward, 100 * result->backward.gpu_busy_frac,
              100 * result->backward.m2g_busy_frac,
              100 * result->backward.g2m_busy_frac,
              100 * result->backward.ssd_busy_frac,
              100 * result->backward.cpu_busy_frac);
  std::printf("Total    %6.2f s -> %.0f token/s, %.0f model-TFLOPS "
              "(GPU busy %.0f%%)\n",
              result->t_iter, result->tokens_per_s, result->model_tflops,
              100 * result->gpu_busy_frac);

  // 5. Extrapolate to a full fine-tuning run (wall clock + SSD wear).
  FineTuneRunEstimator estimator(server);
  auto estimate = estimator.Estimate(*config, batch, /*iterations=*/2000);
  if (estimate.ok()) {
    std::cout << "\nA 2000-iteration fine-tune:\n"
              << FormatEstimate(*estimate) << "\n";
  }
  return 0;
}
