// A real diffusion-style training run on the Ratel substrate (the
// numeric twin of Section V-H): a TinyDiT denoiser learns epsilon
// prediction on synthetic patch tokens while its model states live out
// of core — every Adam update streams P32/OS32 through the striped block
// store via the active-gradient-offloading handler, driven directly
// (without the GPT-specific trainer) to show the runtime API's
// generality.

#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "autograd/dit.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/units.h"
#include "runtime/out_of_core_adam.h"
#include "runtime/thread_pool.h"
#include "xfer/transfer_engine.h"

int main(int argc, char** argv) {
  using namespace ratel;

  int steps = 150;
  if (argc > 1) steps = std::atoi(argv[1]);

  ag::TinyDitConfig cfg;
  cfg.patch_dim = 8;
  cfg.seq_len = 16;
  cfg.hidden_dim = 32;
  cfg.num_heads = 2;
  cfg.num_layers = 2;
  ag::TinyDit model(cfg, /*seed=*/11);
  std::cout << "TinyDiT: " << model.NumParameters()
            << " parameters, full (non-causal) attention\n";

  TransferOptions xfer;
  xfer.dir = "/tmp/ratel_dit_store";
  xfer.num_stripes = 4;
  xfer.chunk_bytes = 1 << 20;
  auto engine = TransferEngine::Open(xfer);
  if (!engine.ok()) {
    std::cerr << engine.status().ToString() << "\n";
    return 1;
  }
  AdamConfig adam_cfg;
  adam_cfg.lr = 2e-3;
  OutOfCoreAdam adam(adam_cfg, engine->get());
  for (auto& [name, var] : model.parameters()) {
    RATEL_CHECK_OK(adam.Register(name, var.value()));
  }
  ThreadPool pipeline(3);

  // Synthetic denoising task: clean patches are a smooth per-position
  // pattern; the model sees clean + sigma*noise and predicts the noise.
  Rng rng(3);
  const int64_t batch = 8;
  const int64_t n = batch * cfg.seq_len * cfg.patch_dim;
  const float sigma = 0.5f;
  std::vector<float> clean(n), noise(n), noisy(n);

  for (int step = 1; step <= steps; ++step) {
    for (int64_t i = 0; i < n; ++i) {
      const int64_t pos = (i / cfg.patch_dim) % cfg.seq_len;
      const int64_t ch = i % cfg.patch_dim;
      clean[i] = std::sin(0.7f * pos + ch);  // structured signal
      noise[i] = static_cast<float>(rng.NextGaussian());
      noisy[i] = clean[i] + sigma * noise[i];
    }
    // Fetch the current P16 copies (forward swap-in), mixed precision.
    std::vector<Fp16> p16;
    for (auto& [name, var] : model.parameters()) {
      RATEL_CHECK_OK(adam.FetchParams16(name, &p16));
      auto& dst = var.mutable_value();
      for (size_t i = 0; i < p16.size(); ++i) dst[i] = HalfToFloat(p16[i]);
    }
    model.ZeroGrads();
    ag::Variable loss = model.Loss(noisy, noise, batch);
    loss.Backward();

    // Active gradient offloading, final block first.
    for (int64_t l = cfg.num_layers - 1; l >= 0; --l) {
      for (const auto& name : model.BlockParameterNames(static_cast<int>(l))) {
        for (auto& [n2, var] : model.parameters()) {
          if (n2 != name) continue;
          std::vector<Fp16> g16(var.grad().size());
          for (size_t i = 0; i < g16.size(); ++i) {
            g16[i] = FloatToHalf(var.grad()[i]);
          }
          pipeline.Submit([&adam, name, g = std::move(g16)] {
            RATEL_CHECK_OK(adam.StepTensor(name, g));
          });
        }
      }
    }
    for (auto& [name, var] : model.parameters()) {
      if (name.rfind("blk", 0) == 0) continue;  // handled above
      std::vector<Fp16> g16(var.grad().size());
      for (size_t i = 0; i < g16.size(); ++i) {
        g16[i] = FloatToHalf(var.grad()[i]);
      }
      pipeline.Submit([&adam, name, g = std::move(g16)] {
        RATEL_CHECK_OK(adam.StepTensor(name, g));
      });
    }
    pipeline.Wait();

    if (step == 1 || step % 30 == 0) {
      std::printf("step %4d  denoising MSE %7.4f  (predicting zero noise "
                  "scores 1.0; the signal is fully recoverable)\n",
                  step, loss.value()[0]);
    }
  }
  const TransferStats stats = (*engine)->stats();
  std::cout << "\nOut-of-core traffic: "
            << FormatBytes(stats.TotalBytesRead()) << " read, "
            << FormatBytes(stats.TotalBytesWritten()) << " written through "
            << (*engine)->store().num_stripes() << " stripes ("
            << FormatBytes(stats.Flow(FlowClass::kGradState).bytes_written)
            << " on the model-state flow)\n";
  return 0;
}
