// Diffusion-model fine-tuning (Section V-H): Ratel's optimizations are
// not LLM-specific. This example plans DiT backbones (Table VI) on a
// consumer GPU and compares against Fast-DiT, which keeps every tensor
// resident in device memory and therefore collapses to tiny batches (or
// OOMs outright) as the backbone grows.

#include <iostream>

#include "baselines/fast_dit.h"
#include "common/table_printer.h"
#include "common/units.h"
#include "core/ratel_system.h"
#include "hw/catalog.h"
#include "model/transformer_config.h"

int main() {
  using namespace ratel;

  const ServerConfig server =
      catalog::EvaluationServer(catalog::Rtx4090(), 768 * kGiB, 12);
  std::cout << "Fine-tuning DiT backbones (512x512 images) on "
            << server.gpu.name << "\n\n";

  RatelSystem ratel;
  FastDiTSystem fast_dit;
  TablePrinter t({"Model", "Fast-DiT batch", "Fast-DiT img/s", "Ratel batch",
                  "Ratel img/s", "Speedup"});
  for (const TransformerConfig& config : AllTableVIModels()) {
    const int fd_batch = fast_dit.MaxMicroBatch(config, server, 256);
    const int ratel_batch = ratel.MaxMicroBatch(config, server, 256);
    std::string fd_rate = "OOM", speedup = "-";
    double fd_imgs = 0.0;
    if (fd_batch >= 1) {
      auto r = fast_dit.Run(config, fd_batch, server);
      if (r.ok()) {
        fd_imgs = r->tokens_per_s;  // images/s for DiT workloads
        fd_rate = TablePrinter::Cell(fd_imgs, 1);
      }
    }
    std::string ratel_rate = "-";
    if (ratel_batch >= 1) {
      auto r = ratel.Run(config, ratel_batch, server);
      if (r.ok()) {
        ratel_rate = TablePrinter::Cell(r->tokens_per_s, 1);
        if (fd_imgs > 0.0) {
          speedup = TablePrinter::Cell(r->tokens_per_s / fd_imgs, 2) + "x";
        } else {
          speedup = "(Fast-DiT OOM)";
        }
      }
    }
    t.AddRow({config.name,
              fd_batch >= 1 ? TablePrinter::Cell(int64_t{fd_batch}) : "OOM",
              fd_rate, TablePrinter::Cell(int64_t{ratel_batch}), ratel_rate,
              speedup});
  }
  t.Print(std::cout);
  std::cout << "\nRatel wins on two axes (Section V-H): it hosts backbones "
               "Fast-DiT cannot, and\nsustains larger batches on the ones "
               "both can train.\n";
  return 0;
}
