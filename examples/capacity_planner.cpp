// Capacity planner: "what is the largest model I can fine-tune on my
// box, and how fast?" — the purchasing question the paper's
// cost-effectiveness analysis (Section V-I) answers for researchers with
// a fixed budget.
//
// Usage: capacity_planner [gpu] [main_mem_gib] [num_ssds]
//   gpu in {4090, 3090, 4080}, defaults: 4090 256 12
//
// Multi-job mode: capacity_planner --jobs N [gpu] [main_mem_gib]
// [num_ssds] runs N copies of each Table IV model that fits through the
// JobManager's admission math (EvaluateAdmission over the server's SSD
// and pinned-DRAM budgets) and prints the per-job verdicts — how many
// concurrent fine-tuning jobs the box actually hosts before the next
// one queues.

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "baselines/colossal_ai.h"
#include "baselines/deepspeed.h"
#include "baselines/flash_neuron.h"
#include "common/table_printer.h"
#include "common/units.h"
#include "core/ratel_system.h"
#include "hw/catalog.h"
#include "model/transformer_config.h"
#include "runtime/job_manager.h"

namespace {

// Per-job admission verdicts for `jobs` concurrent copies of each
// hostable Table IV model — the same EvaluateAdmission/PlanAdmissions
// path the runtime JobManager charges real jobs through.
int RunJobsMode(int jobs, const ratel::ServerConfig& server) {
  using namespace ratel;
  RatelSystem ratel_sys;
  const int64_t ssd_budget = server.ssds.CapacityBytes();
  const int64_t dram_budget = server.main_memory_bytes;
  std::cout << "Admission plan for " << jobs
            << " concurrent jobs per model (SSD budget "
            << FormatBytes(static_cast<double>(ssd_budget))
            << ", pinned-DRAM budget "
            << FormatBytes(static_cast<double>(dram_budget)) << "):\n";
  TablePrinter table({"Model", "Batch", "SSD/job", "Pinned/job", "Admitted",
                      "Queued", "Rejected", "Verdicts"});
  for (const TransformerConfig& config : AllTableIVModels()) {
    const int batch = ratel_sys.MaxMicroBatch(config, server);
    if (batch < 1) {
      table.AddRow({config.name, "-", "-", "-", "-", "-", "-",
                    "does not fit at all"});
      continue;
    }
    const JobDemand demand = PlanJobDemand(config, batch);
    const std::vector<JobDemand> demands(jobs, demand);
    const std::vector<AdmissionVerdict> verdicts =
        PlanAdmissions(demands, ssd_budget, dram_budget);
    int64_t admitted = 0, queued = 0, rejected = 0;
    std::string sequence;
    for (const AdmissionVerdict v : verdicts) {
      switch (v) {
        case AdmissionVerdict::kAdmitted:
          ++admitted;
          sequence += 'A';
          break;
        case AdmissionVerdict::kQueued:
          ++queued;
          sequence += 'Q';
          break;
        case AdmissionVerdict::kRejected:
          ++rejected;
          sequence += 'R';
          break;
      }
    }
    table.AddRow({config.name, TablePrinter::Cell(int64_t{batch}),
                  FormatBytes(static_cast<double>(demand.ssd_bytes)),
                  FormatBytes(static_cast<double>(demand.pinned_host_bytes)),
                  TablePrinter::Cell(admitted), TablePrinter::Cell(queued),
                  TablePrinter::Cell(rejected), sequence});
  }
  table.Print(std::cout);
  std::cout << "\nA = admitted (runs now), Q = queued (runs when a "
            << "neighbor finishes), R = rejected (exceeds the total "
            << "budget).\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ratel;

  int jobs = 0;
  int arg_base = 1;
  if (argc > 2 && std::strcmp(argv[1], "--jobs") == 0) {
    jobs = std::atoi(argv[2]);
    arg_base = 3;
  }
  std::string gpu_name = argc > arg_base ? argv[arg_base] : "4090";
  const int64_t mem_gib =
      argc > arg_base + 1 ? std::atoll(argv[arg_base + 1]) : 256;
  const int ssds = argc > arg_base + 2 ? std::atoi(argv[arg_base + 2]) : 12;

  GpuSpec gpu = catalog::Rtx4090();
  if (gpu_name == "3090") gpu = catalog::Rtx3090();
  if (gpu_name == "4080") gpu = catalog::Rtx4080();
  const ServerConfig server =
      catalog::EvaluationServer(gpu, mem_gib * kGiB, ssds);

  if (jobs > 0) return RunJobsMode(jobs, server);

  std::cout << "Capacity plan for: " << gpu.name << ", " << mem_gib
            << " GiB DRAM, " << ssds << " SSDs (total $"
            << static_cast<int64_t>(server.TotalPriceUsd()) << ")\n\n";

  // 1. Largest trainable model per system (batch 1, Fig. 6 style).
  RatelSystem ratel;
  ZeroInfinitySystem zero_inf;
  ZeroOffloadSystem zero_off;
  ColossalAiSystem colossal;
  FlashNeuronSystem flash;
  const TrainingSystem* systems[] = {&ratel, &zero_inf, &zero_off, &colossal,
                                     &flash};
  TablePrinter cap({"System", "Max model (B params)"});
  for (const TrainingSystem* sys : systems) {
    cap.AddRow({sys->name(),
                TablePrinter::Cell(sys->MaxTrainableBillions(server, 1), 1)});
  }
  cap.Print(std::cout);

  // 2. For each Table IV model Ratel can host: best batch, plan and
  //    simulated throughput.
  std::cout << "\nRatel fine-tuning plan per model:\n";
  TablePrinter plan_table({"Model", "Max batch", "Swap", "To SSD", "Case",
                           "Token/s", "TFLOPS"});
  for (const TransformerConfig& config : AllTableIVModels()) {
    const int batch = ratel.MaxMicroBatch(config, server);
    if (batch < 1) {
      plan_table.AddRow({config.name, "-", "-", "-", "does not fit", "-",
                         "-"});
      continue;
    }
    auto plan = ratel.PlanActivations(config, batch, server);
    auto run = ratel.Run(config, batch, server);
    if (!plan.ok() || !run.ok()) {
      plan_table.AddRow({config.name, TablePrinter::Cell(int64_t{batch}), "-",
                         "-", "error", "-", "-"});
      continue;
    }
    plan_table.AddRow({config.name, TablePrinter::Cell(int64_t{batch}),
                       FormatBytes(static_cast<double>(plan->a_g2m)),
                       FormatBytes(static_cast<double>(plan->ssd_bytes)),
                       SwapCaseName(plan->swap_case),
                       TablePrinter::Cell(run->tokens_per_s, 0),
                       TablePrinter::Cell(run->model_tflops, 0)});
  }
  plan_table.Print(std::cout);

  std::cout << "\nHint: rerun with a different machine, e.g. "
            << "`capacity_planner 4080 128 3`.\n";
  return 0;
}
