// Capacity planner: "what is the largest model I can fine-tune on my
// box, and how fast?" — the purchasing question the paper's
// cost-effectiveness analysis (Section V-I) answers for researchers with
// a fixed budget.
//
// Usage: capacity_planner [gpu] [main_mem_gib] [num_ssds]
//   gpu in {4090, 3090, 4080}, defaults: 4090 256 12

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "baselines/colossal_ai.h"
#include "baselines/deepspeed.h"
#include "baselines/flash_neuron.h"
#include "common/table_printer.h"
#include "common/units.h"
#include "core/ratel_system.h"
#include "hw/catalog.h"
#include "model/transformer_config.h"

int main(int argc, char** argv) {
  using namespace ratel;

  std::string gpu_name = argc > 1 ? argv[1] : "4090";
  const int64_t mem_gib = argc > 2 ? std::atoll(argv[2]) : 256;
  const int ssds = argc > 3 ? std::atoi(argv[3]) : 12;

  GpuSpec gpu = catalog::Rtx4090();
  if (gpu_name == "3090") gpu = catalog::Rtx3090();
  if (gpu_name == "4080") gpu = catalog::Rtx4080();
  const ServerConfig server =
      catalog::EvaluationServer(gpu, mem_gib * kGiB, ssds);

  std::cout << "Capacity plan for: " << gpu.name << ", " << mem_gib
            << " GiB DRAM, " << ssds << " SSDs (total $"
            << static_cast<int64_t>(server.TotalPriceUsd()) << ")\n\n";

  // 1. Largest trainable model per system (batch 1, Fig. 6 style).
  RatelSystem ratel;
  ZeroInfinitySystem zero_inf;
  ZeroOffloadSystem zero_off;
  ColossalAiSystem colossal;
  FlashNeuronSystem flash;
  const TrainingSystem* systems[] = {&ratel, &zero_inf, &zero_off, &colossal,
                                     &flash};
  TablePrinter cap({"System", "Max model (B params)"});
  for (const TrainingSystem* sys : systems) {
    cap.AddRow({sys->name(),
                TablePrinter::Cell(sys->MaxTrainableBillions(server, 1), 1)});
  }
  cap.Print(std::cout);

  // 2. For each Table IV model Ratel can host: best batch, plan and
  //    simulated throughput.
  std::cout << "\nRatel fine-tuning plan per model:\n";
  TablePrinter plan_table({"Model", "Max batch", "Swap", "To SSD", "Case",
                           "Token/s", "TFLOPS"});
  for (const TransformerConfig& config : AllTableIVModels()) {
    const int batch = ratel.MaxMicroBatch(config, server);
    if (batch < 1) {
      plan_table.AddRow({config.name, "-", "-", "-", "does not fit", "-",
                         "-"});
      continue;
    }
    auto plan = ratel.PlanActivations(config, batch, server);
    auto run = ratel.Run(config, batch, server);
    if (!plan.ok() || !run.ok()) {
      plan_table.AddRow({config.name, TablePrinter::Cell(int64_t{batch}), "-",
                         "-", "error", "-", "-"});
      continue;
    }
    plan_table.AddRow({config.name, TablePrinter::Cell(int64_t{batch}),
                       FormatBytes(static_cast<double>(plan->a_g2m)),
                       FormatBytes(static_cast<double>(plan->ssd_bytes)),
                       SwapCaseName(plan->swap_case),
                       TablePrinter::Cell(run->tokens_per_s, 0),
                       TablePrinter::Cell(run->model_tflops, 0)});
  }
  plan_table.Print(std::cout);

  std::cout << "\nHint: rerun with a different machine, e.g. "
            << "`capacity_planner 4080 128 3`.\n";
  return 0;
}
