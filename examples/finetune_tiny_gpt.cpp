// Real end-to-end fine-tuning through the Ratel runtime: a small GPT is
// trained with genuine forward/backward passes (src/autograd) while every
// model-state tensor lives *out of core* in the striped block store — the
// P16 copies are fetched before each forward pass (optionally via the
// DRAM tier cache) and gradients drive the out-of-core CPU Adam handler
// per tensor in backward arrival order (active gradient offloading,
// Section IV-C). Activations are spilled to the store between forward
// and backward (the A16 leg of Table II).
//
// The task is synthetic but learnable (predict (3*id+1) mod V); the run
// reports loss, held-out accuracy, storage traffic and cache hit rate,
// then writes a checkpoint of the fp32 master weights.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <vector>

#include "autograd/ops.h"
#include "autograd/transformer.h"
#include "common/units.h"
#include "runtime/checkpoint.h"
#include "runtime/compute_pool.h"
#include "runtime/dataset.h"
#include "runtime/ratel_trainer.h"

int main(int argc, char** argv) {
  using namespace ratel;

  // Usage: finetune_tiny_gpt [steps] [--threads N]
  int steps = 120;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      SetComputeThreads(std::atoi(argv[++i]));
    } else {
      steps = std::atoi(argv[i]);
    }
  }
  std::cout << "Compute threads: " << ComputeThreads() << "\n";

  ag::TinyGptConfig cfg;
  cfg.vocab_size = 64;
  cfg.seq_len = 16;
  cfg.hidden_dim = 48;
  cfg.num_heads = 4;
  cfg.num_layers = 3;
  ag::TinyGpt model(cfg, /*seed=*/2024);
  std::cout << "TinyGpt: " << model.NumParameters() << " parameters, "
            << cfg.num_layers << " blocks\n";

  TrainerOptions opts;
  opts.grad_mode = GradientOffloadMode::kOptimizedActive;
  opts.store_dir = "/tmp/ratel_example_store";
  opts.num_stripes = 4;              // the emulated SSD array
  opts.host_cache_bytes = 8 * kMiB;  // DRAM tier in front of it
  opts.spill_activations = true;     // A16 swap-out/swap-in, real bytes
  opts.adam.lr = 3e-3;
  auto trainer = RatelTrainer::Create(&model, opts);
  if (!trainer.ok()) {
    std::cerr << trainer.status().ToString() << "\n";
    return 1;
  }

  SyntheticDataset dataset(SyntheticTask::kAffineMap, cfg.vocab_size,
                           cfg.seq_len, /*seed=*/7);
  const int64_t batch = 4;
  const auto train_t0 = std::chrono::steady_clock::now();
  for (int step = 1; step <= steps; ++step) {
    const TokenBatch b = dataset.NextBatch(batch);
    auto loss = (*trainer)->TrainStep(b.ids, b.targets, batch);
    if (!loss.ok()) {
      std::cerr << "step " << step << ": " << loss.status().ToString() << "\n";
      return 1;
    }
    if (step == 1 || step % 20 == 0) {
      const TokenBatch eval = dataset.EvalBatch(batch);
      const double acc =
          ag::Accuracy(model.Logits(eval.ids, batch), eval.targets);
      const StepStats& s = (*trainer)->last_step_stats();
      std::printf(
          "step %4d  loss %6.3f  eval-acc %5.1f%%  (compute %5.1f ms, "
          "optimizer %4.1f ms, A16 spilled %s)\n",
          step, *loss, 100.0 * acc, 1e3 * s.compute_s, 1e3 * s.optimizer_s,
          FormatBytes(static_cast<double>(s.activation_bytes_spilled))
              .c_str());
    }
  }

  const double train_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    train_t0)
          .count();
  std::printf("\nTrained %d steps in %.2f s: %.0f tokens/s (%d threads)\n",
              steps, train_s, steps * batch * cfg.seq_len / train_s,
              ComputeThreads());

  const auto& store = (*trainer)->engine().store();
  std::cout << "\nStorage after training: " << store.num_blobs()
            << " blobs across " << store.num_stripes() << " stripes, "
            << FormatBytes(store.allocated_bytes()) << " allocated\n";
  const TransferStats xfer = (*trainer)->transfer_stats();
  std::cout << "Transfer engine traffic by flow:\n";
  for (int i = 0; i < kNumFlowClasses; ++i) {
    const FlowClass flow = static_cast<FlowClass>(i);
    const FlowCounters& c = xfer.Flow(flow);
    if (c.reads + c.writes == 0) continue;
    std::printf("  %-16s %9s read (%s from DRAM), %9s written\n",
                FlowClassName(flow), FormatBytes(c.bytes_read).c_str(),
                FormatBytes(c.bytes_from_cache).c_str(),
                FormatBytes(c.bytes_written).c_str());
  }
  std::printf("DRAM tier hit rate %.0f%%, %lld evictions\n",
              100.0 * xfer.DramHitRate(),
              static_cast<long long>(xfer.cache.evictions));

  // Keep the fine-tuned master weights.
  std::vector<std::string> names;
  for (const auto& [name, var] : model.parameters()) names.push_back(name);
  const std::string ckpt = "/tmp/ratel_example_model.ckpt";
  const Status saved =
      checkpoint::Save((*trainer)->optimizer(), names, ckpt);
  if (saved.ok()) {
    auto loaded = checkpoint::Load(ckpt);
    std::cout << "Checkpoint: " << ckpt << " ("
              << (loaded.ok() ? loaded->size() : 0) << " tensors)\n";
  } else {
    std::cerr << "checkpoint failed: " << saved.ToString() << "\n";
  }
  return 0;
}
